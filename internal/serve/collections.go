package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	er "repro"
	"repro/internal/wal"
)

// Durable collections: named record corpora mutated over HTTP and
// journaled through the WAL before acknowledgment. Every mutation is
// validated against in-memory state, appended to the log, applied, and
// acknowledged only once its covering fsync returned — so a SIGKILL at
// any point loses nothing a client was told succeeded. Resolution over a
// collection snapshots its records into an er.Dataset and rides the
// existing admission/worker/breaker path; the full corpus is re-resolved
// on every query (incremental re-fusion is out of scope).

// Collection-mutation errors, mapped onto 404/409 by the handlers.
var (
	// ErrCollectionExists rejects creating a name that is already taken.
	ErrCollectionExists = errors.New("serve: collection already exists")
	// ErrCollectionNotFound rejects operations on an unknown collection.
	ErrCollectionNotFound = errors.New("serve: collection not found")
	// ErrRecordNotFound rejects deleting an unknown record.
	ErrRecordNotFound = errors.New("serve: record not found")
	// ErrRecovering rejects collection operations while the WAL replay
	// that rebuilds them is still running (or has failed).
	ErrRecovering = errors.New("serve: collections are recovering")
)

// WAL record types for collection mutations. The type byte lives outside
// the JSON payload so replay can dispatch without sniffing.
const (
	mutCreate byte = 1
	mutDrop   byte = 2
	mutUpsert byte = 3
	mutDelete byte = 4
	// mutEvict journals a dedup-table eviction (see dedupEntry): the keys
	// it names stop being replayable. Journaling evictions is what makes
	// the dedup table a pure function of the log — replay never consults
	// the *current* capacity configuration, so restarting with a different
	// DedupCapacity cannot silently resurrect or drop tracked keys.
	mutEvict byte = 5
)

// maxIdempotencyKeyBytes bounds the Idempotency-Key header value. Tighter
// than the WAL's own wal.MaxKeyBytes cap: keys appear in journal records,
// snapshots and log lines.
const maxIdempotencyKeyBytes = 128

// mutation is the journaled form of one collection change; fields beyond
// Collection are populated per type. Evict is set only on mutEvict
// records.
type mutation struct {
	Collection string   `json:"collection,omitempty"`
	ID         string   `json:"id,omitempty"`
	Entity     string   `json:"entity,omitempty"`
	Source     int      `json:"source,omitempty"`
	Text       string   `json:"text,omitempty"`
	Evict      []string `json:"evict,omitempty"`
}

// colRecord is one stored record: the er.Record fields, keyed by the
// client-assigned ID.
type colRecord struct {
	Entity string `json:"entity,omitempty"`
	Source int    `json:"source,omitempty"`
	Text   string `json:"text"`
}

// dedupEntry records one applied keyed mutation: the sequence number that
// journaled it and the canonical request bytes, which is what lets a
// retried request be answered with its original outcome (same seq to wait
// on, same deterministic response) — and lets a *different* request
// arriving under the same key be refused instead of silently dropped.
type dedupEntry struct {
	Key  string `json:"key"`
	Seq  uint64 `json:"seq"`
	Type byte   `json:"type"`
	Data []byte `json:"data"`
}

// colStore is the in-memory state the WAL makes durable: collections of
// records, plus the idempotency dedup table. It is mutated only through
// checkLocked+applyLocked (live path) and apply (replay path), so journal
// order and state order always agree.
type colStore struct {
	mu   sync.RWMutex
	cols map[string]map[string]colRecord

	// dedup maps idempotency key → the mutation it already applied;
	// dedupOrder is insertion (FIFO) order, the eviction order once the
	// table exceeds dedupCap. Evictions are journaled (mutEvict) so the
	// table replays identically regardless of the restarted server's
	// capacity setting; replay itself never enforces the cap.
	dedup      map[string]*dedupEntry
	dedupOrder []string
	dedupCap   int

	// version counts each collection's mutations in journal order (create,
	// drop, upsert, delete all bump it; the counter survives drops so it is
	// monotonic per name), and logs holds the capped per-collection delta
	// logs the incremental resolvers catch up from. Both are derived state:
	// never journaled, rebuilt by replay.
	version map[string]uint64
	logs    map[string]*colLog

	replays   atomic.Int64 // keyed requests answered from the dedup table
	conflicts atomic.Int64 // key reuse with a different request body
	evictions atomic.Int64 // keys evicted from the table
}

func newColStore(dedupCap int) *colStore {
	return &colStore{
		cols:     make(map[string]map[string]colRecord),
		dedup:    make(map[string]*dedupEntry),
		dedupCap: dedupCap,
		version:  make(map[string]uint64),
		logs:     make(map[string]*colLog),
	}
}

// rememberLocked inserts one applied keyed mutation into the dedup table.
// It never enforces capacity — the live path journals an eviction first
// (see evictDedupOverflowLocked), and replay applies only what the journal
// says.
func (c *colStore) rememberLocked(key string, seq uint64, typ byte, data []byte) {
	if _, ok := c.dedup[key]; !ok {
		c.dedupOrder = append(c.dedupOrder, key)
	}
	c.dedup[key] = &dedupEntry{Key: key, Seq: seq, Type: typ, Data: data}
}

// forgetLocked removes one key from the dedup table and its FIFO order.
func (c *colStore) forgetLocked(key string) {
	if _, ok := c.dedup[key]; !ok {
		return
	}
	delete(c.dedup, key)
	for i, k := range c.dedupOrder {
		if k == key {
			c.dedupOrder = append(c.dedupOrder[:i], c.dedupOrder[i+1:]...)
			break
		}
	}
}

// checkLocked validates a mutation against current state without applying
// it. The live mutation path runs check → journal → apply under one lock
// hold, so anything the journal records is guaranteed to apply cleanly —
// on the live path and during replay alike.
func (c *colStore) checkLocked(typ byte, m mutation) error {
	switch typ {
	case mutCreate:
		if _, ok := c.cols[m.Collection]; ok {
			return fmt.Errorf("%w: %q", ErrCollectionExists, m.Collection)
		}
	case mutDrop:
		if _, ok := c.cols[m.Collection]; !ok {
			return fmt.Errorf("%w: %q", ErrCollectionNotFound, m.Collection)
		}
	case mutUpsert:
		if _, ok := c.cols[m.Collection]; !ok {
			return fmt.Errorf("%w: %q", ErrCollectionNotFound, m.Collection)
		}
	case mutDelete:
		col, ok := c.cols[m.Collection]
		if !ok {
			return fmt.Errorf("%w: %q", ErrCollectionNotFound, m.Collection)
		}
		if _, ok := col[m.ID]; !ok {
			return fmt.Errorf("%w: %q in %q", ErrRecordNotFound, m.ID, m.Collection)
		}
	case mutEvict:
		// Evicting an absent key is a no-op, so an evict record always
		// applies — including after a snapshot already dropped the keys.
	default:
		return fmt.Errorf("%w: unknown mutation type %d", wal.ErrCorrupt, typ)
	}
	return nil
}

// applyLocked applies a checked mutation. It cannot fail: checkLocked ran
// under the same lock hold.
func (c *colStore) applyLocked(typ byte, m mutation) {
	switch typ {
	case mutCreate:
		c.cols[m.Collection] = make(map[string]colRecord)
	case mutDrop:
		delete(c.cols, m.Collection)
	case mutUpsert:
		c.cols[m.Collection][m.ID] = colRecord{Entity: m.Entity, Source: m.Source, Text: m.Text}
	case mutDelete:
		delete(c.cols[m.Collection], m.ID)
	case mutEvict:
		for _, k := range m.Evict {
			c.forgetLocked(k)
		}
	}
	c.bumpLocked(typ, m)
}

// apply replays one journaled mutation during recovery. Keyed records
// rebuild the dedup table exactly as the live path populated it, so a
// client retrying across a crash still gets its original outcome; replay
// never enforces the capacity cap — only journaled mutEvict records shrink
// the table.
func (c *colStore) apply(rec wal.Record) error {
	var m mutation
	if err := json.Unmarshal(rec.Data, &m); err != nil {
		return fmt.Errorf("%w: record %d has an undecodable payload: %w", wal.ErrCorrupt, rec.Seq, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkLocked(rec.Type, m); err != nil {
		return fmt.Errorf("record %d does not apply: %w", rec.Seq, err)
	}
	c.applyLocked(rec.Type, m)
	if rec.Key != "" && rec.Type != mutEvict {
		c.rememberLocked(rec.Key, rec.Seq, rec.Type, rec.Data)
	}
	return nil
}

// snapshotState is the on-disk snapshot payload. encoding/json writes map
// keys in sorted order, so equal states produce identical snapshots; the
// dedup table rides along in FIFO order so compaction cannot erase the
// replay window. A pre-idempotency snapshot simply has no dedup field and
// restores an empty table.
type snapshotState struct {
	Collections map[string]map[string]colRecord `json:"collections"`
	Dedup       []dedupEntry                    `json:"dedup,omitempty"`
}

// snapshotWithSeq serializes the whole store for wal.WriteSnapshot
// together with the sequence number the serialization covers. Both are
// captured under the store's read lock: the live mutation path journals
// and applies under the write lock, so the payload and the stamp cannot
// diverge — wal.WriteSnapshot refuses a pair that did.
func (s *Server) snapshotWithSeq() ([]byte, uint64, error) {
	s.cols.mu.RLock()
	defer s.cols.mu.RUnlock()
	st := snapshotState{Collections: s.cols.cols}
	for _, key := range s.cols.dedupOrder {
		st.Dedup = append(st.Dedup, *s.cols.dedup[key])
	}
	data, err := json.Marshal(st)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: encoding collections snapshot: %w", err)
	}
	return data, s.walLog.LastSeq(), nil
}

// restoreJSON replaces the store's state with a decoded snapshot.
func (c *colStore) restoreJSON(data []byte) error {
	var st snapshotState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("%w: undecodable snapshot payload: %w", wal.ErrCorrupt, err)
	}
	if st.Collections == nil {
		st.Collections = make(map[string]map[string]colRecord)
	}
	for name, col := range st.Collections {
		if col == nil {
			st.Collections[name] = make(map[string]colRecord)
		}
	}
	dedup := make(map[string]*dedupEntry, len(st.Dedup))
	order := make([]string, 0, len(st.Dedup))
	for i := range st.Dedup {
		e := st.Dedup[i]
		if _, ok := dedup[e.Key]; !ok {
			order = append(order, e.Key)
		}
		dedup[e.Key] = &e
	}
	c.mu.Lock()
	c.cols = st.Collections
	c.dedup = dedup
	c.dedupOrder = order
	// Restored collections start a fresh version lineage with no delta log:
	// the first resolve of each rebuilds its mirror from the record set.
	c.version = make(map[string]uint64, len(st.Collections))
	c.logs = make(map[string]*colLog, len(st.Collections))
	for name := range st.Collections {
		c.version[name] = 1
		c.logs[name] = &colLog{start: 2}
	}
	c.mu.Unlock()
	return nil
}

// counts reports the number of collections and total records.
func (c *colStore) counts() (collections, records int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, col := range c.cols {
		records += len(col)
	}
	return len(c.cols), records
}

// dataset snapshots a collection into an er.Dataset, records ordered by
// ID so resolution input — and therefore output — is deterministic for a
// given collection state.
func (c *colStore) dataset(name string) (*er.Dataset, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	col, ok := c.cols[name]
	if !ok {
		return nil, false
	}
	ids := make([]string, 0, len(col))
	for id := range col {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	records := make([]er.Record, len(ids))
	for i, id := range ids {
		r := col[id]
		records[i] = er.Record{Text: r.Text, Source: r.Source, Entity: r.Entity}
	}
	return er.NewDataset("collection:"+name, records), true
}

// list reports every collection name with its record count, sorted by
// name.
func (c *colStore) list() []collectionInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.cols))
	for name := range c.cols {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]collectionInfo, len(names))
	for i, name := range names {
		out[i] = collectionInfo{Name: name, Records: len(c.cols[name])}
	}
	return out
}

// get reports one collection's records sorted by ID.
func (c *colStore) get(name string) ([]recordInfo, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	col, ok := c.cols[name]
	if !ok {
		return nil, false
	}
	ids := make([]string, 0, len(col))
	for id := range col {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]recordInfo, len(ids))
	for i, id := range ids {
		r := col[id]
		out[i] = recordInfo{ID: id, Entity: r.Entity, Source: r.Source, Text: r.Text}
	}
	return out, true
}

// collectionInfo is the wire form of one collection in GET /collections.
type collectionInfo struct {
	Name    string `json:"name"`
	Records int    `json:"records"`
}

// recordInfo is the wire form of one record in GET /collections/{name}.
type recordInfo struct {
	ID     string `json:"id"`
	Entity string `json:"entity,omitempty"`
	Source int    `json:"source,omitempty"`
	Text   string `json:"text"`
}

// validateCollectionName bounds the namespace: names appear in URLs and
// log lines, so keep them short and unambiguous.
func validateCollectionName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("%w: collection name must be 1..128 characters", er.ErrInvalidOptions)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("%w: collection name may only contain letters, digits, '-', '_', '.'", er.ErrInvalidOptions)
		}
	}
	return nil
}

func validateRecordID(id string) error {
	if id == "" || len(id) > 256 {
		return fmt.Errorf("%w: record id must be 1..256 bytes", er.ErrInvalidOptions)
	}
	return nil
}

// mutOutcome reports how a mutation concluded: the journal sequence that
// covers it and whether it was answered from the dedup table instead of
// being applied again.
type mutOutcome struct {
	seq      uint64
	replayed bool
}

// mutate is the single durable-write path: validate against state,
// journal, apply — all under one store lock hold so WAL order equals
// state order — then wait for the covering fsync outside the lock, which
// is what lets concurrent mutations share one group commit. With no data
// directory configured the store is ephemeral and the journal step is
// skipped (the dedup table still works, within the process lifetime).
//
// A non-empty key is the exactly-once contract: if the key was already
// applied with the same canonical request bytes, nothing is re-applied —
// the caller waits on the original record's durability and gets the
// original outcome back; the same key with different bytes is refused
// (422) rather than guessed at. Concurrent retries of the same logical
// request serialize on the store lock: the first one in journals and
// applies, every later one takes the replay path and waits on the same
// sequence number.
//
// Mutations participate in the drain exactly like jobs: acquire an
// in-flight slot, then re-check draining (Shutdown sets draining before
// it starts waiting, so any slot acquired after that self-rejects here).
// Shutdown's drain therefore waits out every in-flight mutation and
// refuses new ones before finishDurability writes the final snapshot —
// the snapshot can never race an acknowledged write out of the journal.
func (s *Server) mutate(typ byte, m mutation, key string) (mutOutcome, *httpError) {
	var out mutOutcome
	if herr := s.collectionsReady(); herr != nil {
		return out, herr
	}
	release := s.inflight.Acquire()
	defer release()
	if s.draining.Load() {
		s.c.unavailable.Add(1)
		return out, &httpError{status: http.StatusServiceUnavailable, kind: "draining",
			message: ErrDraining.Error(), retryAfter: unavailableRetryAfter}
	}
	data, err := json.Marshal(m)
	if err != nil {
		return out, &httpError{status: http.StatusInternalServerError, kind: "internal",
			message: fmt.Sprintf("serve: encoding mutation: %v", err)}
	}
	s.cols.mu.Lock()
	if key != "" {
		if e, ok := s.cols.dedup[key]; ok {
			if e.Type != typ || !bytes.Equal(e.Data, data) {
				s.cols.conflicts.Add(1)
				s.cols.mu.Unlock()
				return out, &httpError{status: http.StatusUnprocessableEntity, kind: "idempotency_conflict",
					message: fmt.Sprintf("serve: idempotency key %q was already used for a different request", key)}
			}
			seq := e.Seq
			s.cols.replays.Add(1)
			s.cols.mu.Unlock()
			// The original apply may still be racing toward its fsync;
			// the replayed ack must carry the same durability guarantee.
			if s.walLog != nil {
				if err := s.walLog.WaitDurable(s.baseCtx, seq); err != nil {
					return out, &httpError{status: http.StatusServiceUnavailable, kind: "storage_failed",
						message: fmt.Sprintf("serve: awaiting durability: %v", err)}
				}
			}
			out.seq, out.replayed = seq, true
			return out, nil
		}
	}
	if err := s.cols.checkLocked(typ, m); err != nil {
		s.cols.mu.Unlock()
		return out, mutationError(err)
	}
	var seq uint64
	if s.walLog != nil {
		seq, err = s.walLog.AppendKeyed(typ, key, data)
		if err != nil {
			s.cols.mu.Unlock()
			return out, &httpError{status: http.StatusServiceUnavailable, kind: "storage_failed",
				message: fmt.Sprintf("serve: journaling mutation: %v", err)}
		}
	}
	s.cols.applyLocked(typ, m)
	if key != "" {
		s.cols.rememberLocked(key, seq, typ, data)
		s.evictDedupOverflowLocked()
	}
	s.cols.mu.Unlock()
	if s.walLog != nil {
		// The wait runs under the server's lifecycle context, not the
		// request's: the mutation is already applied and journaled, so a
		// client that disconnects mid-wait must not abort the fsync
		// confirmation and leave applied state whose durability nobody
		// observed. The drain kill still bounds the wait.
		if err := s.walLog.WaitDurable(s.baseCtx, seq); err != nil {
			// The mutation is applied in memory but its durability is
			// unconfirmed; the client must not treat it as acknowledged.
			return out, &httpError{status: http.StatusServiceUnavailable, kind: "storage_failed",
				message: fmt.Sprintf("serve: awaiting durability: %v", err)}
		}
	}
	out.seq = seq
	return out, nil
}

// evictDedupOverflowLocked bounds the dedup table: once it exceeds the
// configured capacity the oldest keys are journaled as one mutEvict record
// and then dropped. Journal-before-forget keeps the table a pure function
// of the log; the evict record's own durability is not waited on (losing
// it to a crash merely replays a slightly larger table, never a wrong
// answer). If journaling the eviction fails the keys are kept in memory —
// an over-capacity table is safe, a key the log still replays but the
// table forgot is not.
func (s *Server) evictDedupOverflowLocked() {
	c := s.cols
	over := len(c.dedup) - c.dedupCap
	if over <= 0 {
		return
	}
	keys := append([]string(nil), c.dedupOrder[:over]...)
	if s.walLog != nil {
		data, err := json.Marshal(mutation{Evict: keys})
		if err != nil {
			s.opts.Logf("serve: encoding dedup eviction: %v", err)
			return
		}
		if _, err := s.walLog.Append(mutEvict, data); err != nil {
			s.opts.Logf("serve: dedup eviction not journaled, keys kept in memory: %v", err)
			return
		}
	}
	for _, k := range keys {
		c.forgetLocked(k)
	}
	c.evictions.Add(int64(len(keys)))
}

// collectionsReady gates the collections API on recovery state.
func (s *Server) collectionsReady() *httpError {
	switch s.recoveryPhase() {
	case recoveryFailed:
		return &httpError{status: http.StatusServiceUnavailable, kind: "recovery_failed",
			message: fmt.Sprintf("serve: durable state unavailable: %v", s.recoveryError())}
	case recoveryRunning:
		return &httpError{status: http.StatusServiceUnavailable, kind: "recovering",
			message: ErrRecovering.Error(), retryAfter: unavailableRetryAfter}
	}
	return nil
}

// mutationError maps a store validation failure onto its HTTP form.
func mutationError(err error) *httpError {
	switch {
	case errors.Is(err, ErrCollectionExists):
		return &httpError{status: http.StatusConflict, kind: "exists", message: err.Error()}
	case errors.Is(err, ErrCollectionNotFound), errors.Is(err, ErrRecordNotFound):
		return &httpError{status: http.StatusNotFound, kind: "not_found", message: err.Error()}
	default:
		return &httpError{status: http.StatusBadRequest, kind: "bad_request", message: err.Error()}
	}
}

// idempotencyKey extracts and validates the request's Idempotency-Key
// header. Absent is fine (the mutation is simply not protected against
// retries); present, it must fit the journal's key frame.
func idempotencyKey(r *http.Request) (string, *httpError) {
	key := r.Header.Get("Idempotency-Key")
	if len(key) > maxIdempotencyKeyBytes {
		return "", &httpError{status: http.StatusBadRequest, kind: "invalid_options",
			message: fmt.Sprintf("serve: Idempotency-Key must be at most %d bytes, got %d", maxIdempotencyKeyBytes, len(key))}
	}
	return key, nil
}

// mutateAndRespond runs one mutation through the durable-write path and
// writes its response. The success body is rebuilt deterministically from
// the request, so a replayed request (same key, same canonical bytes —
// mutate enforced that) gets a byte-identical outcome to the original,
// marked with an Idempotency-Replayed header.
func (s *Server) mutateAndRespond(w http.ResponseWriter, r *http.Request, typ byte, m mutation, status int, body any) {
	key, herr := idempotencyKey(r)
	if herr != nil {
		writeHTTPError(w, herr)
		return
	}
	out, herr := s.mutate(typ, m, key)
	if herr != nil {
		writeHTTPError(w, herr)
		return
	}
	if out.replayed {
		w.Header().Set("Idempotency-Replayed", "true")
	}
	writeJSON(w, status, body)
}

// handleCollectionCreate is POST /collections: {"name": "..."}.
func (s *Server) handleCollectionCreate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.opts.MaxUploadBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("serve: bad request body: %v", err))
		return
	}
	if err := validateCollectionName(req.Name); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_options", err.Error())
		return
	}
	s.mutateAndRespond(w, r, mutCreate, mutation{Collection: req.Name},
		http.StatusCreated, collectionInfo{Name: req.Name})
}

// handleCollectionList is GET /collections.
func (s *Server) handleCollectionList(w http.ResponseWriter, _ *http.Request) {
	if herr := s.collectionsReady(); herr != nil {
		writeError(w, herr.status, herr.kind, herr.message)
		return
	}
	writeJSON(w, http.StatusOK, map[string][]collectionInfo{"collections": s.cols.list()})
}

// handleCollectionGet is GET /collections/{name}: the record listing.
func (s *Server) handleCollectionGet(w http.ResponseWriter, r *http.Request) {
	if herr := s.collectionsReady(); herr != nil {
		writeError(w, herr.status, herr.kind, herr.message)
		return
	}
	name := r.PathValue("name")
	records, ok := s.cols.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("%v: %q", ErrCollectionNotFound, name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "records": records})
}

// handleCollectionDrop is DELETE /collections/{name}.
func (s *Server) handleCollectionDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mutateAndRespond(w, r, mutDrop, mutation{Collection: name},
		http.StatusOK, map[string]string{"dropped": name})
}

// handleRecordPut is PUT /collections/{name}/records/{id}:
// {"entity": "...", "source": 0, "text": "..."}.
func (s *Server) handleRecordPut(w http.ResponseWriter, r *http.Request) {
	name, id := r.PathValue("name"), r.PathValue("id")
	if err := validateRecordID(id); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_options", err.Error())
		return
	}
	var req colRecord
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.opts.MaxUploadBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("serve: bad request body: %v", err))
		return
	}
	m := mutation{Collection: name, ID: id, Entity: req.Entity, Source: req.Source, Text: req.Text}
	s.mutateAndRespond(w, r, mutUpsert, m,
		http.StatusOK, recordInfo{ID: id, Entity: req.Entity, Source: req.Source, Text: req.Text})
}

// handleRecordDelete is DELETE /collections/{name}/records/{id}.
func (s *Server) handleRecordDelete(w http.ResponseWriter, r *http.Request) {
	name, id := r.PathValue("name"), r.PathValue("id")
	s.mutateAndRespond(w, r, mutDelete, mutation{Collection: name, ID: id},
		http.StatusOK, map[string]string{"deleted": id})
}

// handleCollectionResolve is POST /collections/{name}/resolve, through the
// standard admission → queue → worker path. Without option overrides the
// job runs delta-scoped: the collection's incremental mirror is synced from
// the delta log and only the candidate-graph components touched since the
// last resolve are re-fused (per-component fusion semantics — see
// er.Collection; the response carries the work split in "delta" and on the
// "deltafuse" stage). A request with option overrides — or a server with an
// injected Runner — falls back to snapshotting the collection into a
// dataset and re-resolving the full corpus under those options.
func (s *Server) handleCollectionResolve(w http.ResponseWriter, r *http.Request) {
	if herr := s.collectionsReady(); herr != nil {
		writeError(w, herr.status, herr.kind, herr.message)
		return
	}
	name := r.PathValue("name")
	var jo *jobOptions
	if r.ContentLength != 0 {
		var req struct {
			Options *jobOptions `json:"options"`
		}
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.opts.MaxUploadBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("serve: bad request body: %v", err))
			return
		}
		jo = req.Options
	}
	d, ok := s.cols.dataset(name)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("%v: %q", ErrCollectionNotFound, name))
		return
	}
	opts := jo.apply(er.DefaultOptions())
	class := "collection:" + name
	if opts.UseRSS {
		class += "+rss"
	}
	if err := opts.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_options", err.Error())
		return
	}
	var run func(ctx context.Context) (*er.Result, error)
	if jo == nil && !s.opts.runnerInjected {
		run = func(ctx context.Context) (*er.Result, error) {
			return s.resolveCollectionDelta(ctx, name)
		}
	}
	s.runResolve(w, r, d, class, opts, run)
}
