package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	er "repro"
	"repro/internal/wal"
)

// doJSON issues one request against the collections API and returns the
// status plus the decoded body (always a JSON object on this surface).
func doJSON(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decode body: %v", method, url, err)
	}
	return resp.StatusCode, out
}

// seedCollection creates a collection and upserts a small corpus with two
// obvious duplicate pairs, returning the number of records written.
func seedCollection(t *testing.T, base, name string) int {
	t.Helper()
	if status, body := doJSON(t, http.MethodPost, base+"/collections", fmt.Sprintf(`{"name":%q}`, name)); status != http.StatusCreated {
		t.Fatalf("create collection = %d (%v), want 201", status, body)
	}
	records := []string{
		`{"entity":"e1","source":0,"text":"joe's pizza 123 main st new york"}`,
		`{"entity":"e1","source":1,"text":"joes pizza 123 main street new york ny"}`,
		`{"entity":"e2","source":0,"text":"blue bottle coffee 300 webster st oakland"}`,
		`{"entity":"e2","source":1,"text":"blue bottle coffee co 300 webster street oakland ca"}`,
		`{"entity":"e3","source":0,"text":"golden gate hardware supply san francisco"}`,
		`{"entity":"e4","source":1,"text":"mission chinese food 2234 mission st"}`,
	}
	for i, rec := range records {
		url := fmt.Sprintf("%s/collections/%s/records/r%02d", base, name, i)
		if status, body := doJSON(t, http.MethodPut, url, rec); status != http.StatusOK {
			t.Fatalf("upsert %d = %d (%v), want 200", i, status, body)
		}
	}
	return len(records)
}

// resolveCollection runs POST /collections/{name}/resolve with pair
// listings enabled and returns the decoded job response.
func resolveCollection(t *testing.T, base, name string) (int, jobResponse) {
	t.Helper()
	resp, err := http.Post(base+"/collections/"+name+"/resolve?pairs=1", "application/json",
		strings.NewReader(`{"options":{"seed":1}}`))
	if err != nil {
		t.Fatalf("POST resolve: %v", err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decode resolve response: %v", err)
	}
	return resp.StatusCode, jr
}

// TestDurabilityOptionsValidate pins the validation contract for the
// durability knobs: every rejection wraps er.ErrInvalidOptions and
// surfaces through New before any goroutine starts.
func TestDurabilityOptionsValidate(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name    string
		opts    Options
		wantErr bool
	}{
		{"zero value", Options{}, false},
		{"data dir alone", Options{DataDir: dir}, false},
		{"full durable config", Options{DataDir: dir, FsyncInterval: time.Millisecond, MaxSegmentBytes: 1 << 20}, false},
		{"negative fsync interval", Options{DataDir: dir, FsyncInterval: -time.Second}, true},
		{"negative segment bytes", Options{DataDir: dir, MaxSegmentBytes: -1}, true},
		{"fsync interval without data dir", Options{FsyncInterval: time.Millisecond}, true},
		{"segment bytes without data dir", Options{MaxSegmentBytes: 1 << 20}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if !tc.wantErr {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, er.ErrInvalidOptions) {
				t.Fatalf("Validate() = %v, want ErrInvalidOptions", err)
			}
			if _, nerr := New(tc.opts); !errors.Is(nerr, er.ErrInvalidOptions) {
				t.Fatalf("New() = %v, want ErrInvalidOptions", nerr)
			}
		})
	}
}

// TestCollectionsCRUDEphemeral exercises the whole collections surface
// with no DataDir: the store works in memory and every error path maps to
// its documented status code.
func TestCollectionsCRUDEphemeral(t *testing.T) {
	s, hs := newTestServer(t, Options{BreakerThreshold: -1})
	n := seedCollection(t, hs.URL, "shops")

	if status, _ := doJSON(t, http.MethodPost, hs.URL+"/collections", `{"name":"shops"}`); status != http.StatusConflict {
		t.Fatalf("duplicate create = %d, want 409", status)
	}
	if status, _ := doJSON(t, http.MethodPost, hs.URL+"/collections", `{"name":"bad name!"}`); status != http.StatusBadRequest {
		t.Fatalf("invalid name = %d, want 400", status)
	}
	if status, _ := doJSON(t, http.MethodPut, hs.URL+"/collections/missing/records/r1", `{"text":"x"}`); status != http.StatusNotFound {
		t.Fatalf("upsert into missing collection = %d, want 404", status)
	}
	if status, _ := doJSON(t, http.MethodDelete, hs.URL+"/collections/shops/records/nope", ""); status != http.StatusNotFound {
		t.Fatalf("delete missing record = %d, want 404", status)
	}

	status, body := doJSON(t, http.MethodGet, hs.URL+"/collections/shops", "")
	if status != http.StatusOK {
		t.Fatalf("get collection = %d, want 200", status)
	}
	if got := len(body["records"].([]any)); got != n {
		t.Fatalf("collection holds %d records, want %d", got, n)
	}

	if status, _ := doJSON(t, http.MethodDelete, hs.URL+"/collections/shops/records/r00", ""); status != http.StatusOK {
		t.Fatalf("delete record: status %d, want 200", status)
	}
	if cols, recs := s.cols.counts(); cols != 1 || recs != n-1 {
		t.Fatalf("counts = %d/%d, want 1/%d", cols, recs, n-1)
	}
	st := getStats(t, hs.URL)
	if st.Collections.Collections != 1 || st.Collections.Records != n-1 {
		t.Fatalf("stats collections = %+v, want 1 collection, %d records", st.Collections, n-1)
	}
	if st.Durability != nil {
		t.Fatalf("ephemeral server reports durability stats: %+v", st.Durability)
	}

	if status, _ := doJSON(t, http.MethodDelete, hs.URL+"/collections/shops", ""); status != http.StatusOK {
		t.Fatalf("drop = %d, want 200", status)
	}
	if status, _ := doJSON(t, http.MethodGet, hs.URL+"/collections/shops", ""); status != http.StatusNotFound {
		t.Fatalf("get after drop = %d, want 404", status)
	}
	if status, _ := doJSON(t, http.MethodDelete, hs.URL+"/collections/shops", ""); status != http.StatusNotFound {
		t.Fatalf("double drop = %d, want 404", status)
	}
}

// TestCollectionResolve runs a real resolution over a collection corpus
// through the standard admission path.
func TestCollectionResolve(t *testing.T) {
	_, hs := newTestServer(t, Options{BreakerThreshold: -1})
	n := seedCollection(t, hs.URL, "shops")

	status, jr := resolveCollection(t, hs.URL, "shops")
	if status != http.StatusOK || jr.State != JobCompleted {
		t.Fatalf("resolve = %d/%s (%s), want 200/completed", status, jr.State, jr.Error)
	}
	if jr.Records != n {
		t.Fatalf("resolved %d records, want %d", jr.Records, n)
	}
	if jr.Dataset != "collection:shops" || jr.Class != "collection:shops" {
		t.Fatalf("dataset/class = %q/%q, want collection:shops", jr.Dataset, jr.Class)
	}

	resp, err := http.Post(hs.URL+"/collections/missing/resolve", "application/json", nil)
	if err != nil {
		t.Fatalf("resolve missing: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("resolve missing collection = %d, want 404", resp.StatusCode)
	}

	resp, err = http.Post(hs.URL+"/collections/shops/resolve", "application/json",
		strings.NewReader(`{"options":{"eta":-5}}`))
	if err != nil {
		t.Fatalf("resolve bad options: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("resolve with invalid options = %d, want 400", resp.StatusCode)
	}
}

// waitReady polls a durable server until recovery finishes, failing the
// test if it lands anywhere but ready.
func waitReady(t *testing.T, s *Server) {
	t.Helper()
	waitFor(t, func() bool { return s.recoveryPhase() != recoveryRunning })
	if phase := s.recoveryPhase(); phase != recoveryReady {
		t.Fatalf("recovery phase = %s, want ready (err: %v)", recoveryPhaseName(phase), s.recoveryError())
	}
}

// TestDurableRestartAfterShutdown is the issue's acceptance path: mutate
// a durable server, drain it (which writes a final snapshot), start a
// fresh server on the same directory and demand byte-identical resolve
// results.
func TestDurableRestartAfterShutdown(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Options{DataDir: dir, BreakerThreshold: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs1 := httptest.NewServer(s1.Handler())
	waitReady(t, s1)

	seedCollection(t, hs1.URL, "shops")
	status, before := resolveCollection(t, hs1.URL, "shops")
	if status != http.StatusOK || before.State != JobCompleted {
		t.Fatalf("pre-restart resolve = %d/%s (%s)", status, before.State, before.Error)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	hs1.Close()

	s2, hs2 := newTestServer(t, Options{DataDir: dir, BreakerThreshold: -1})
	waitReady(t, s2)

	st := getStats(t, hs2.URL)
	if st.Durability == nil || st.Durability.Phase != "ready" {
		t.Fatalf("durability stats after restart = %+v, want phase ready", st.Durability)
	}
	if !st.Durability.SnapshotRestored {
		t.Fatal("clean shutdown wrote a final snapshot; restart should restore from it")
	}
	if st.Durability.ReplayedRecords != 0 {
		t.Fatalf("replayed %d records past the final snapshot, want 0", st.Durability.ReplayedRecords)
	}
	if st.Collections.Collections != 1 || st.Collections.Records != 6 {
		t.Fatalf("restored state = %+v, want 1 collection with 6 records", st.Collections)
	}

	status, after := resolveCollection(t, hs2.URL, "shops")
	if status != http.StatusOK || after.State != JobCompleted {
		t.Fatalf("post-restart resolve = %d/%s (%s)", status, after.State, after.Error)
	}
	assertSameResolution(t, before, after)
}

// TestDurableRestartWithoutShutdown covers the other recovery path: the
// first server is simply abandoned (no drain, no final snapshot), so the
// second must rebuild state by replaying the journal tail. Every mutation
// was fsynced before its ack, so nothing may be missing.
func TestDurableRestartWithoutShutdown(t *testing.T) {
	dir := t.TempDir()
	s1, hs1 := newTestServer(t, Options{DataDir: dir, BreakerThreshold: -1})
	waitReady(t, s1)
	n := seedCollection(t, hs1.URL, "shops")
	status, before := resolveCollection(t, hs1.URL, "shops")
	if status != http.StatusOK {
		t.Fatalf("pre-restart resolve = %d (%s)", status, before.Error)
	}

	// No Shutdown: open a second server over the same directory, exactly
	// what a post-SIGKILL restart sees. Acked mutations are on disk.
	s2, hs2 := newTestServer(t, Options{DataDir: dir, BreakerThreshold: -1})
	waitReady(t, s2)

	st := getStats(t, hs2.URL)
	if st.Durability == nil || st.Durability.SnapshotRestored {
		t.Fatalf("durability stats = %+v, want replay without snapshot", st.Durability)
	}
	if want := int64(n + 1); st.Durability.ReplayedRecords != want { // +1 create
		t.Fatalf("replayed %d records, want %d", st.Durability.ReplayedRecords, want)
	}
	if st.Collections.Collections != 1 || st.Collections.Records != n {
		t.Fatalf("recovered state = %+v, want 1 collection with %d records", st.Collections, n)
	}

	status, after := resolveCollection(t, hs2.URL, "shops")
	if status != http.StatusOK {
		t.Fatalf("post-restart resolve = %d (%s)", status, after.Error)
	}
	assertSameResolution(t, before, after)
}

// assertSameResolution demands two resolve responses describe the same
// outcome, down to individual match pairs.
func assertSameResolution(t *testing.T, a, b jobResponse) {
	t.Helper()
	if a.Records != b.Records || a.Matches != b.Matches || a.Clusters != b.Clusters || a.Converged != b.Converged {
		t.Fatalf("resolutions differ: records %d/%d, matches %d/%d, clusters %d/%d, converged %v/%v",
			a.Records, b.Records, a.Matches, b.Matches, a.Clusters, b.Clusters, a.Converged, b.Converged)
	}
	ap, _ := json.Marshal(a.Pairs)
	bp, _ := json.Marshal(b.Pairs)
	if !bytes.Equal(ap, bp) {
		t.Fatalf("match pairs differ:\n  before: %s\n  after:  %s", ap, bp)
	}
}

// gateFS delays segment creation until released, pinning a server in the
// recovering phase for as long as a test needs to observe it.
type gateFS struct {
	wal.FS
	gate chan struct{}
}

func (g gateFS) Create(path string) (wal.File, error) {
	<-g.gate
	return g.FS.Create(path)
}

// TestReadyzReportsRecovery holds recovery open with a gated FS and walks
// the full readiness arc: 503 recovering (mutations rejected with the
// same kind), then 200 ready once the replay completes.
func TestReadyzReportsRecovery(t *testing.T) {
	gate := make(chan struct{})
	s, hs := newTestServer(t, Options{
		DataDir:          t.TempDir(),
		WALFS:            gateFS{FS: wal.OSFS{}, gate: gate},
		BreakerThreshold: -1,
	})

	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || body["status"] != "recovering" {
		t.Fatalf("readyz during recovery = %d %v, want 503 recovering", resp.StatusCode, body)
	}
	if _, ok := body["replayed_records"]; !ok {
		t.Fatal("recovering readyz must report replay progress")
	}
	if status, mut := doJSON(t, http.MethodPost, hs.URL+"/collections", `{"name":"early"}`); status != http.StatusServiceUnavailable || mut["kind"] != "recovering" {
		t.Fatalf("mutation during recovery = %d %v, want 503 recovering", status, mut)
	}

	close(gate)
	waitReady(t, s)
	resp, err = http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after recovery = %d, want 200", resp.StatusCode)
	}
	if status, _ := doJSON(t, http.MethodPost, hs.URL+"/collections", `{"name":"late"}`); status != http.StatusCreated {
		t.Fatalf("mutation after recovery = %d, want 201", status)
	}
}

// TestRecoveryFailureIsTypedAndServed plants a journal whose record
// cannot legally apply (an upsert into a collection that was never
// created). Startup must not panic and must not serve half-recovered
// state: /readyz and every collection endpoint answer 503
// recovery_failed, while the resolve surface keeps working.
func TestRecoveryFailureIsTypedAndServed(t *testing.T) {
	dir := t.TempDir()
	l, _, err := wal.Open(context.Background(), wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	if _, err := l.AppendDurable(context.Background(), 3, []byte(`{"collection":"ghost","id":"r1","text":"x"}`)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s, hs := newTestServer(t, Options{DataDir: dir, BreakerThreshold: -1})
	waitFor(t, func() bool { return s.recoveryPhase() != recoveryRunning })
	if s.recoveryPhase() != recoveryFailed {
		t.Fatalf("recovery phase = %s, want failed", recoveryPhaseName(s.recoveryPhase()))
	}
	if !errors.Is(s.recoveryError(), ErrCollectionNotFound) {
		t.Fatalf("recovery error = %v, want ErrCollectionNotFound", s.recoveryError())
	}

	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after failed recovery = %d, want 503", resp.StatusCode)
	}
	if status, body := doJSON(t, http.MethodPost, hs.URL+"/collections", `{"name":"c"}`); status != http.StatusServiceUnavailable || body["kind"] != "recovery_failed" {
		t.Fatalf("mutation after failed recovery = %d %v, want 503 recovery_failed", status, body)
	}
	st := getStats(t, hs.URL)
	if st.Durability == nil || st.Durability.Phase != "failed" || st.Durability.Error == "" {
		t.Fatalf("durability stats = %+v, want failed phase with error", st.Durability)
	}

	// The resolution surface is independent of the durable store and must
	// still serve.
	if status, jr := postJSON(t, hs.URL, `{"replica":"restaurant","scale":0.05}`); status != http.StatusOK {
		t.Fatalf("replica resolve with failed recovery = %d (%s), want 200", status, jr.Error)
	}
}

// TestDurableMutationsSurviveInWAL goes below the HTTP surface: every
// acknowledged mutation must be readable back from the journal directory
// by a plain wal.Open, proving acks really do mean "on disk".
func TestDurableMutationsSurviveInWAL(t *testing.T) {
	dir := t.TempDir()
	s, hs := newTestServer(t, Options{DataDir: dir, BreakerThreshold: -1})
	waitReady(t, s)
	n := seedCollection(t, hs.URL, "shops")
	if status, _ := doJSON(t, http.MethodDelete, hs.URL+"/collections/shops/records/r00", ""); status != http.StatusOK {
		t.Fatalf("delete: status %d", status)
	}

	store := newColStore(DefaultDedupCapacity)
	l, rec, err := wal.Open(context.Background(), wal.Options{
		Dir:        dir,
		OnSnapshot: func(_ uint64, data []byte) error { return store.restoreJSON(data) },
		OnRecord:   store.apply,
	})
	if err != nil {
		t.Fatalf("independent wal.Open: %v", err)
	}
	defer l.Close()
	if want := uint64(n + 2); rec.LastSeq != want { // create + upserts + delete
		t.Fatalf("journal LastSeq = %d, want %d", rec.LastSeq, want)
	}
	if cols, recs := store.counts(); cols != 1 || recs != n-1 {
		t.Fatalf("replayed store = %d/%d, want 1/%d", cols, recs, n-1)
	}
}

// TestDrainRejectsMutations pins the fix for the snapshot-vs-mutation
// race: once Shutdown has set draining, a collection mutation arriving
// through a still-open HTTP listener is refused with 503 instead of
// appending past the final snapshot's covered sequence — an append there
// would be compacted away and silently lost on the next startup.
func TestDrainRejectsMutations(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{DataDir: dir, BreakerThreshold: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	waitReady(t, s)
	seedCollection(t, hs.URL, "shops")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The job server is drained but the HTTP server still answers — the
	// exact window cmd/erserve has between srv.Shutdown and hs.Shutdown.
	status, body := doJSON(t, http.MethodPut, hs.URL+"/collections/shops/records/late", `{"text":"too late"}`)
	if status != http.StatusServiceUnavailable || body["kind"] != "draining" {
		t.Fatalf("mutation during drain = %d (%v), want 503 draining", status, body)
	}

	// The refused mutation is nowhere: the restarted server restores the
	// final snapshot with exactly the pre-drain corpus.
	s2, hs2 := newTestServer(t, Options{DataDir: dir, BreakerThreshold: -1})
	waitReady(t, s2)
	st := getStats(t, hs2.URL)
	if !st.Durability.SnapshotRestored || st.Durability.ReplayedRecords != 0 {
		t.Fatalf("restart durability = %+v, want snapshot restore with no tail", st.Durability)
	}
	if st.Collections.Collections != 1 || st.Collections.Records != 6 {
		t.Fatalf("restored state = %+v, want the 6 pre-drain records", st.Collections)
	}
	if _, ok := s2.cols.get("shops"); !ok {
		t.Fatal("collection missing after restart")
	}
}
