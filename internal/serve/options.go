// Package serve implements the long-running resolution daemon behind
// cmd/erserve: a bounded-admission job queue feeding a fixed worker pool,
// per-request isolation (own context deadline, panic containment), a
// per-class circuit breaker with half-open probing and exponential backoff,
// and graceful drain with a bounded budget. The package exists so the
// hardened execution layer of the core library (guard checkpoints, budgets,
// the error taxonomy) has a host that actually exercises it under load:
// every job runs through er.ResolveContext with its own deadline, and every
// failure mode — overload, deadline, panic, shutdown — maps to a documented
// HTTP status via er.HTTPStatus.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"time"

	er "repro"
	"repro/internal/clock"
	"repro/internal/wal"
)

// Default values selected by the zero Options fields.
const (
	// DefaultMaxConcurrency is the worker-pool size selected by a zero
	// Options.MaxConcurrency.
	DefaultMaxConcurrency = 2
	// DefaultQueueDepth is the admission-queue capacity selected by a zero
	// Options.QueueDepth.
	DefaultQueueDepth = 16
	// DefaultJobTimeout is the per-job deadline selected by a zero
	// Options.JobTimeout.
	DefaultJobTimeout = 60 * time.Second
	// DefaultDrainBudget is the graceful-drain budget selected by a zero
	// Options.DrainBudget.
	DefaultDrainBudget = 15 * time.Second
	// DefaultMaxUploadBytes is the CSV upload cap selected by a zero
	// Options.MaxUploadBytes.
	DefaultMaxUploadBytes = 16 << 20
	// DefaultBreakerThreshold is the consecutive-failure trip point
	// selected by a zero Options.BreakerThreshold.
	DefaultBreakerThreshold = 5
	// DefaultBreakerCooldown is the first open interval selected by a zero
	// Options.BreakerCooldown.
	DefaultBreakerCooldown = 5 * time.Second
	// DefaultBreakerMaxCooldown caps the exponential backoff, selected by a
	// zero Options.BreakerMaxCooldown.
	DefaultBreakerMaxCooldown = 2 * time.Minute
	// DefaultLatencyWindow is the per-stage latency ring size selected by a
	// zero Options.LatencyWindow.
	DefaultLatencyWindow = 512
	// DefaultRetainedJobs is the terminal-job history size selected by a
	// zero Options.RetainedJobs.
	DefaultRetainedJobs = 256
	// DefaultSnapshotCache is the snapshot-cache capacity selected by a
	// zero Options.SnapshotCache.
	DefaultSnapshotCache = 16
	// DefaultDedupCapacity is the idempotency dedup-table bound selected by
	// a zero Options.DedupCapacity.
	DefaultDedupCapacity = 4096
)

// Options configures a Server. The zero value is valid: every field's zero
// selects the documented default, so embedding callers configure only what
// they care about.
type Options struct {
	// MaxConcurrency is the number of jobs resolved in parallel (the worker
	// pool size). Zero selects DefaultMaxConcurrency.
	MaxConcurrency int
	// WorkersPerJob is each job's kernel-goroutine budget (er.Options.
	// Workers): the ceiling applied to whatever the client requests, and
	// the value used when the client requests nothing. Zero derives the
	// budget from the machine: GOMAXPROCS / MaxConcurrency, floored at 1,
	// so a fully loaded worker pool does not oversubscribe the CPUs.
	WorkersPerJob int
	// QueueDepth bounds the jobs admitted but not yet running. A full queue
	// fast-fails new work with 429. Zero selects DefaultQueueDepth.
	QueueDepth int
	// JobTimeout is the per-job wall-clock deadline, measured from
	// admission (queue wait counts against it, which is what makes queued
	// work sheddable). Zero selects DefaultJobTimeout.
	JobTimeout time.Duration
	// DrainBudget is how long Shutdown lets in-flight jobs finish before
	// hard-canceling the stragglers. Zero selects DefaultDrainBudget.
	DrainBudget time.Duration
	// MaxUploadBytes caps the size of an uploaded CSV body. Zero selects
	// DefaultMaxUploadBytes.
	MaxUploadBytes int64
	// BreakerThreshold is the number of consecutive server-side failures in
	// one job class that trips its circuit breaker. Zero selects
	// DefaultBreakerThreshold; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the open interval before the first half-open
	// probe; each re-trip doubles it. Zero selects DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// BreakerMaxCooldown caps the exponential backoff between probes. Zero
	// selects DefaultBreakerMaxCooldown.
	BreakerMaxCooldown time.Duration
	// LatencyWindow is the number of recent samples kept per latency stage
	// for the /stats quantiles. Zero selects DefaultLatencyWindow.
	LatencyWindow int
	// RetainedJobs bounds the terminal jobs kept for /jobs/{id} lookups.
	// Zero selects DefaultRetainedJobs.
	RetainedJobs int
	// SnapshotCache bounds the pre-matching snapshots (tokenized corpus +
	// blocked candidate graph, content-keyed by dataset and options) shared
	// across jobs, so repeated resolutions of the same dataset skip
	// tokenization and blocking; cached stages show up in job traces with
	// "cached". Zero selects DefaultSnapshotCache; negative disables reuse.
	SnapshotCache int
	// DedupCapacity bounds the idempotency dedup table: the number of
	// distinct Idempotency-Key values whose outcomes stay replayable. The
	// oldest keys are evicted (journaled, so replay agrees) once the bound
	// is exceeded — a retry arriving after its key was evicted is applied
	// as a fresh request, so size this above the worst-case number of
	// logical mutations a client could still be retrying. Zero selects
	// DefaultDedupCapacity; Validate rejects negative values.
	DedupCapacity int
	// DataDir is the directory holding the durable-collections journal
	// (write-ahead log segments and snapshots). Zero (empty) disables
	// durability: the collections API still works, but state lives only in
	// memory and dies with the process.
	DataDir string
	// FsyncInterval batches journal fsyncs (group commit): a mutation is
	// acknowledged at most this long after it was appended. Zero selects
	// the strictest mode — fsync on every mutation — so durability is the
	// default and batching is the opt-in. Negative is invalid, as is any
	// non-zero value without a DataDir; Validate rejects both.
	FsyncInterval time.Duration
	// MaxSegmentBytes is the journal segment size that triggers rotation.
	// Zero selects wal.DefaultMaxSegmentBytes. Negative is invalid, as is
	// any non-zero value without a DataDir; Validate rejects both.
	MaxSegmentBytes int64
	// WALFS injects the journal's filesystem. Nil selects the real one
	// (wal.OSFS); the fault suite injects a faultcheck.FaultFS. Ignored
	// without a DataDir.
	WALFS wal.FS
	// Clock injects the time source used for latency accounting and
	// breaker transitions. Nil selects the system clock; tests inject a
	// fake to make breaker timing deterministic.
	Clock clock.Func
	// Runner executes one resolution job. Nil selects er.ResolveContext;
	// the fault-injection suite substitutes panicking, stalling and
	// erroring runners to drive the isolation boundary.
	Runner func(ctx context.Context, d *er.Dataset, opts er.Options) (*er.Result, error)
	// Logf receives one line per lifecycle event (admission, completion,
	// trip, drain). Nil discards logs.
	Logf func(format string, args ...any)

	// runnerInjected records that a custom Runner was configured (set by
	// withDefaults). The delta-scoped collection resolve path bypasses the
	// Runner, so it is disabled when one was injected — the fault suites
	// substitute Runner to drive the job isolation boundary and must see
	// every job.
	runnerInjected bool
}

// Validate reports the first configuration error, or nil, wrapping
// er.ErrInvalidOptions so callers classify it with errors.Is. Only the
// durability knobs need validation — every other field's entire range is
// meaningful (zero selects a default, negatives select documented
// disable semantics).
func (o Options) Validate() error {
	switch {
	case o.FsyncInterval < 0:
		return fmt.Errorf("%w: serve: FsyncInterval must be >= 0, got %s", er.ErrInvalidOptions, o.FsyncInterval)
	case o.MaxSegmentBytes < 0:
		return fmt.Errorf("%w: serve: MaxSegmentBytes must be >= 0, got %d", er.ErrInvalidOptions, o.MaxSegmentBytes)
	case o.DataDir == "" && o.FsyncInterval != 0:
		return fmt.Errorf("%w: serve: FsyncInterval requires a DataDir", er.ErrInvalidOptions)
	case o.DataDir == "" && o.MaxSegmentBytes != 0:
		return fmt.Errorf("%w: serve: MaxSegmentBytes requires a DataDir", er.ErrInvalidOptions)
	case o.DedupCapacity < 0:
		return fmt.Errorf("%w: serve: DedupCapacity must be >= 0, got %d", er.ErrInvalidOptions, o.DedupCapacity)
	}
	return nil
}

// withDefaults returns a copy with every zero field resolved to its
// documented default.
func (o Options) withDefaults() Options {
	if o.MaxConcurrency <= 0 {
		o.MaxConcurrency = DefaultMaxConcurrency
	}
	if o.WorkersPerJob <= 0 {
		o.WorkersPerJob = runtime.GOMAXPROCS(0) / o.MaxConcurrency
		if o.WorkersPerJob < 1 {
			o.WorkersPerJob = 1
		}
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = DefaultJobTimeout
	}
	if o.DrainBudget <= 0 {
		o.DrainBudget = DefaultDrainBudget
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = DefaultBreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	if o.BreakerMaxCooldown <= 0 {
		o.BreakerMaxCooldown = DefaultBreakerMaxCooldown
	}
	if o.LatencyWindow <= 0 {
		o.LatencyWindow = DefaultLatencyWindow
	}
	if o.RetainedJobs <= 0 {
		o.RetainedJobs = DefaultRetainedJobs
	}
	if o.SnapshotCache == 0 {
		o.SnapshotCache = DefaultSnapshotCache
	}
	if o.DedupCapacity == 0 {
		o.DedupCapacity = DefaultDedupCapacity
	}
	o.Clock = clock.OrSystem(o.Clock)
	if o.Runner == nil {
		o.Runner = er.ResolveContext
	} else {
		o.runnerInjected = true
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}
