package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	er "repro"
	"repro/internal/wal"
)

// counters aggregates the server's monotonic event counts. Every request
// increments exactly one terminal counter (completed, failed, shed,
// rejected, tripped, unavailable), which is what the stress suite asserts:
// terminal counts sum to the request count, nothing is lost.
type counters struct {
	admitted    atomic.Int64 // entered the queue
	completed   atomic.Int64 // resolved successfully
	failed      atomic.Int64 // ran and returned an error (any class)
	shed        atomic.Int64 // dequeued but not run: deadline unmeetable or drain
	rejected    atomic.Int64 // fast-failed 429 on a full queue
	tripped     atomic.Int64 // fast-failed 503 by an open breaker
	unavailable atomic.Int64 // fast-failed 503 during drain
	panics      atomic.Int64 // panics converted to errors by the job boundary
	running     atomic.Int64 // gauge: jobs executing right now

	deltaResolves    atomic.Int64 // collection resolves served by the delta path
	resolverRebuilds atomic.Int64 // delta resolves that rebuilt their mirror
}

// latencyRing keeps the most recent window of duration samples for one
// pipeline stage and reports exact quantiles over that window. A bounded
// window instead of a streaming sketch: the arithmetic is exact, the memory
// is constant, and /stats is called far less often than jobs complete.
type latencyRing struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	filled  bool
}

func newLatencyRing(window int) *latencyRing {
	return &latencyRing{samples: make([]time.Duration, window)}
}

func (r *latencyRing) add(d time.Duration) {
	r.mu.Lock()
	r.samples[r.next] = d
	r.next++
	if r.next == len(r.samples) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// LatencyStats is the /stats view of one stage's recent latencies.
type LatencyStats struct {
	Samples int     `json:"samples"`
	P50Ms   float64 `json:"p50_ms"`
	P90Ms   float64 `json:"p90_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MaxMs   float64 `json:"max_ms"`
}

// quantiles computes exact quantiles over the current window.
func (r *latencyRing) quantiles() LatencyStats {
	r.mu.Lock()
	n := r.next
	if r.filled {
		n = len(r.samples)
	}
	window := make([]time.Duration, n)
	copy(window, r.samples[:n])
	r.mu.Unlock()
	if n == 0 {
		return LatencyStats{}
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	at := func(q float64) float64 {
		idx := int(q * float64(n-1))
		return float64(window[idx]) / float64(time.Millisecond)
	}
	return LatencyStats{
		Samples: n,
		P50Ms:   at(0.50),
		P90Ms:   at(0.90),
		P99Ms:   at(0.99),
		MaxMs:   float64(window[n-1]) / float64(time.Millisecond),
	}
}

// StageStats is the /stats view of one pipeline stage aggregated across
// every completed job: how often it ran, how often the snapshot cache
// served it, and its cumulative executed wall time (cached servings
// contribute no wall).
type StageStats struct {
	Stage      string  `json:"stage"`
	Executions int64   `json:"executions"`
	Cached     int64   `json:"cached"`
	TotalMs    float64 `json:"total_ms"`
}

// stageTotals aggregates per-stage counters across completed jobs.
type stageTotals struct {
	mu sync.Mutex
	m  map[string]*stageAccum
}

type stageAccum struct {
	executions int64
	cached     int64
	wall       time.Duration
}

func newStageTotals() *stageTotals {
	return &stageTotals{m: make(map[string]*stageAccum)}
}

// record folds one completed job's trace into the totals.
func (t *stageTotals) record(tr er.Trace) {
	t.mu.Lock()
	for _, st := range tr {
		a := t.m[st.Stage]
		if a == nil {
			a = &stageAccum{}
			t.m[st.Stage] = a
		}
		a.executions++
		if st.Cached {
			a.cached++
		} else {
			a.wall += st.Wall
		}
	}
	t.mu.Unlock()
}

// snapshot returns the totals sorted by stage name for a deterministic
// /stats body.
func (t *stageTotals) snapshot() []StageStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.m))
	for name := range t.m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]StageStats, len(names))
	for i, name := range names {
		a := t.m[name]
		out[i] = StageStats{
			Stage:      name,
			Executions: a.executions,
			Cached:     a.cached,
			TotalMs:    float64(a.wall) / float64(time.Millisecond),
		}
	}
	return out
}

// SnapshotCacheStats is the /stats view of the shared snapshot cache:
// whole-dataset pre-matching snapshots plus the per-component fusion
// results the delta-scoped collection resolver memoizes.
type SnapshotCacheStats struct {
	Enabled          bool  `json:"enabled"`
	Hits             int64 `json:"hits"`
	Misses           int64 `json:"misses"`
	Entries          int   `json:"entries"`
	ComponentHits    int64 `json:"component_hits,omitempty"`
	ComponentMisses  int64 `json:"component_misses,omitempty"`
	ComponentEntries int   `json:"component_entries,omitempty"`
}

func snapshotCacheStats(c *er.SnapshotCache) SnapshotCacheStats {
	if c == nil {
		return SnapshotCacheStats{}
	}
	st := c.Stats()
	return SnapshotCacheStats{
		Enabled: true, Hits: st.Hits, Misses: st.Misses, Entries: st.Entries,
		ComponentHits:    st.ComponentHits,
		ComponentMisses:  st.ComponentMisses,
		ComponentEntries: st.ComponentEntries,
	}
}

// CollectionsStats is the /stats view of the durable-collections store and
// its incremental resolve path: DeltaResolves counts collection resolves
// served delta-scoped, ResolverRebuilds the subset that had to rebuild
// their mirror from scratch (first use, restart, or a delta-log overflow).
type CollectionsStats struct {
	Collections      int   `json:"collections"`
	Records          int   `json:"records"`
	DeltaResolves    int64 `json:"delta_resolves"`
	ResolverRebuilds int64 `json:"resolver_rebuilds"`
}

// IdempotencyStats is the /stats view of the exactly-once dedup table.
type IdempotencyStats struct {
	TrackedKeys int   `json:"tracked_keys"`
	Capacity    int   `json:"capacity"`
	Replays     int64 `json:"replays"`
	Conflicts   int64 `json:"conflicts"`
	Evictions   int64 `json:"evictions"`
}

// idempotencyStats snapshots the dedup table's gauges and counters.
func (c *colStore) idempotencyStats() IdempotencyStats {
	c.mu.RLock()
	tracked := len(c.dedup)
	c.mu.RUnlock()
	return IdempotencyStats{
		TrackedKeys: tracked,
		Capacity:    c.dedupCap,
		Replays:     c.replays.Load(),
		Conflicts:   c.conflicts.Load(),
		Evictions:   c.evictions.Load(),
	}
}

// DurabilityStats is the /stats view of the journal and its recovery;
// omitted entirely when no DataDir is configured.
type DurabilityStats struct {
	Phase            string     `json:"phase"`
	SnapshotRestored bool       `json:"snapshot_restored"`
	ReplayedRecords  int64      `json:"replayed_records"`
	TornTail         bool       `json:"torn_tail"`
	TruncatedBytes   int64      `json:"truncated_bytes"`
	Error            string     `json:"error,omitempty"`
	WAL              *wal.Stats `json:"wal,omitempty"`
}

// Stats is the full /stats snapshot.
type Stats struct {
	QueueDepth     int                 `json:"queue_depth"`
	QueueCapacity  int                 `json:"queue_capacity"`
	InFlight       int                 `json:"in_flight"`
	Running        int64               `json:"running"`
	Draining       bool                `json:"draining"`
	Admitted       int64               `json:"admitted"`
	Completed      int64               `json:"completed"`
	Failed         int64               `json:"failed"`
	Shed           int64               `json:"shed"`
	Rejected       int64               `json:"rejected_429"`
	BreakerTripped int64               `json:"breaker_tripped_503"`
	Unavailable    int64               `json:"draining_503"`
	Panics         int64               `json:"panics_recovered"`
	QueueLatency   LatencyStats        `json:"queue_latency"`
	RunLatency     LatencyStats        `json:"run_latency"`
	TotalLatency   LatencyStats        `json:"total_latency"`
	Breakers       []BreakerClassStats `json:"breakers"`
	Stages         []StageStats        `json:"stages"`
	SnapshotCache  SnapshotCacheStats  `json:"snapshot_cache"`
	Collections    CollectionsStats    `json:"collections"`
	Idempotency    IdempotencyStats    `json:"idempotency"`
	Durability     *DurabilityStats    `json:"durability,omitempty"`
}
