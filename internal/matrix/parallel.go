package matrix

import (
	"runtime"
	"sync"
)

// parallelRows splits the half-open row range [0, n) into contiguous chunks
// and runs fn on each chunk from its own goroutine. On a single-core machine
// it degrades to a plain call with no goroutine overhead.
func parallelRows(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelRange exposes the chunked scheduler for other packages that need
// to fan work out across index ranges (e.g. RSS edge sampling).
func ParallelRange(n int, fn func(lo, hi int)) { parallelRows(n, fn) }
