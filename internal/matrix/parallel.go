package matrix

import (
	"repro/internal/parallel"
)

// parallelRows fans fn out over the half-open row range [0, n) through the
// repository's single deterministic scheduler (internal/parallel): fixed
// Grain-sized chunks independent of GOMAXPROCS, so the row kernels here —
// which write disjoint per-row output — are bit-identical serial vs.
// parallel. Inputs below one chunk run on the calling goroutine with no
// goroutine overhead; workers < 1 selects GOMAXPROCS.
func parallelRows(workers, n int, fn func(lo, hi int)) {
	parallel.For(workers, n, fn)
}

// ParallelRange exposes the chunked scheduler for other packages that need
// to fan work out across index ranges, using GOMAXPROCS workers. Callers
// with a Workers knob should use internal/parallel directly.
func ParallelRange(n int, fn func(lo, hi int)) { parallel.For(0, n, fn) }
