package matrix

import (
	"math/rand"
	"testing"
)

func benchPattern(n int, density float64) (*Pattern, *PatVec, *PatVec) {
	rng := rand.New(rand.NewSource(1))
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				edges = append(edges, Edge{int32(i), int32(j)})
			}
		}
	}
	p := NewPattern(n, edges)
	a := NewPatVec(p)
	b := NewPatVec(p)
	for k := range a.Val {
		a.Val[k] = rng.Float64()
		b.Val[k] = rng.Float64()
	}
	return p, a, b
}

// BenchmarkMaskedMul measures the CliqueRank inner kernel at the densities
// the replicas produce.
func BenchmarkMaskedMul(b *testing.B) {
	for _, tc := range []struct {
		n       int
		density float64
		name    string
	}{
		{200, 0.02, "n=200/sparse"},
		{200, 0.3, "n=200/dense"},
		{800, 0.02, "n=800/sparse"},
	} {
		_, mt, a := benchPattern(tc.n, tc.density)
		b.Run(tc.name, func(b *testing.B) {
			at := a.Transpose()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MaskedMul(mt, at)
			}
		})
	}
}

func BenchmarkDenseMul(b *testing.B) {
	for _, n := range []int{64, 256} {
		rng := rand.New(rand.NewSource(2))
		x := randomDense(rng, n, n)
		y := randomDense(rng, n, n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x.Mul(y)
			}
		})
	}
}

func BenchmarkPatVecTranspose(b *testing.B) {
	_, a, _ := benchPattern(500, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Transpose()
	}
}

func BenchmarkCSRMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := randomCSR(rng, 1000, 1000, 0.01)
	x := make([]float64, 1000)
	for i := range x {
		x[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x)
	}
}

func sizeName(n int) string {
	switch n {
	case 64:
		return "n=64"
	case 256:
		return "n=256"
	default:
		return "n=?"
	}
}
