package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func randomDense(rng *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func naiveMul(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestDenseMulKnown(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFrom([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := NewDenseFrom([][]float64{{19, 22}, {43, 50}})
	if !got.Equalish(want, 1e-12) {
		t.Errorf("Mul = %v, want %v", got.Data, want.Data)
	}
}

func TestDenseMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		r := 1 + rng.Intn(15)
		k := 1 + rng.Intn(15)
		c := 1 + rng.Intn(15)
		a := randomDense(rng, r, k)
		b := randomDense(rng, k, c)
		if !a.Mul(b).Equalish(naiveMul(a, b), 1e-9) {
			t.Fatalf("trial %d: Mul differs from naive for %dx%d·%dx%d", trial, r, k, k, c)
		}
	}
}

func TestDenseIdentityIsNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 9, 9)
	if !a.Mul(Identity(9)).Equalish(a, 1e-12) {
		t.Error("a·I != a")
	}
	if !Identity(9).Mul(a).Equalish(a, 1e-12) {
		t.Error("I·a != a")
	}
}

func TestDenseMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomDense(rng, 7, 5)
	b := randomDense(rng, 5, 6)
	c := randomDense(rng, 6, 4)
	left := a.Mul(b).Mul(c)
	right := a.Mul(b.Mul(c))
	if !left.Equalish(right, 1e-9) {
		t.Error("(ab)c != a(bc)")
	}
}

func TestDenseTranspose(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !at.Transpose().Equalish(a, 0) {
		t.Error("double transpose is not identity")
	}
}

func TestDenseHadamardAndAddAndScale(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFrom([][]float64{{2, 0}, {1, -1}})
	if got := a.Hadamard(b); !got.Equalish(NewDenseFrom([][]float64{{2, 0}, {3, -4}}), 0) {
		t.Errorf("Hadamard = %v", got.Data)
	}
	if got := a.Add(b); !got.Equalish(NewDenseFrom([][]float64{{3, 2}, {4, 3}}), 0) {
		t.Errorf("Add = %v", got.Data)
	}
	if got := a.Scale(2); !got.Equalish(NewDenseFrom([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Errorf("Scale = %v", got.Data)
	}
}

func TestDenseMulVec(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", got)
	}
}

func TestDenseMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomDense(rng, 8, 5)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	xm := NewDense(5, 1)
	copy(xm.Data, x)
	want := a.Mul(xm)
	got := a.MulVec(x)
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MulVec[%d] = %g, want %g", i, got[i], want.At(i, 0))
		}
	}
}

func TestDensePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	NewDense(2, 3).Mul(NewDense(2, 3))
}
