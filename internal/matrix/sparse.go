package matrix

import (
	"fmt"
	"sort"
)

// CSR is a compressed sparse row matrix. Column indexes inside each row are
// strictly ascending.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32   // len Rows+1
	Col        []int32   // len nnz
	Val        []float64 // len nnz
}

// Entry is one (row, col, value) triple used to assemble sparse matrices.
type Entry struct {
	Row, Col int32
	Val      float64
}

// NewCSR assembles a CSR matrix from entries. Duplicate (row, col) entries
// are summed.
func NewCSR(rows, cols int, entries []Entry) *CSR {
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for k := 0; k < len(sorted); {
		e := sorted[k]
		v := e.Val
		k++
		for k < len(sorted) && sorted[k].Row == e.Row && sorted[k].Col == e.Col {
			v += sorted[k].Val
			k++
		}
		if e.Row < 0 || int(e.Row) >= rows || e.Col < 0 || int(e.Col) >= cols {
			//lint:invariant dimension preconditions are programmer errors; tests assert these panics
			panic(fmt.Sprintf("matrix: entry (%d,%d) out of %dx%d", e.Row, e.Col, rows, cols))
		}
		m.Col = append(m.Col, e.Col)
		m.Val = append(m.Val, v)
		m.RowPtr[e.Row+1]++
	}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Col) }

// RowSlice returns the column indexes and values of row i.
func (m *CSR) RowSlice(i int) ([]int32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.Col[lo:hi], m.Val[lo:hi]
}

// At returns the value at (i, j), zero if the entry is not stored.
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.RowSlice(i)
	k := sort.Search(len(cols), func(k int) bool { return cols[k] >= int32(j) })
	if k < len(cols) && cols[k] == int32(j) {
		return vals[k]
	}
	return 0
}

// ToDense expands the matrix to dense form (used by tests and small inputs).
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.RowSlice(i)
		row := d.Row(i)
		for k, c := range cols {
			row[c] = vals[k]
		}
	}
	return d
}

// DenseToCSR converts a dense matrix, keeping entries with |v| > 0.
func DenseToCSR(d *Dense) *CSR {
	var entries []Entry
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		for j, v := range row {
			if v != 0 {
				entries = append(entries, Entry{Row: int32(i), Col: int32(j), Val: v})
			}
		}
	}
	return NewCSR(d.Rows, d.Cols, entries)
}

// MulVec computes m · x.
func (m *CSR) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		//lint:invariant dimension preconditions are programmer errors; tests assert these panics
		panic("matrix: CSR MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	parallelRows(0, m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, vals := m.RowSlice(i)
			var s float64
			for k, c := range cols {
				s += vals[k] * x[c]
			}
			out[i] = s
		}
	})
	return out
}

// MulVecT computes mᵀ · x without materializing the transpose.
func (m *CSR) MulVecT(x []float64) []float64 {
	if m.Rows != len(x) {
		//lint:invariant dimension preconditions are programmer errors; tests assert these panics
		panic("matrix: CSR MulVecT dimension mismatch")
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		cols, vals := m.RowSlice(i)
		for k, c := range cols {
			out[c] += vals[k] * xi
		}
	}
	return out
}

// sparseDot computes the dot product of two sparse vectors given as sorted
// (index, value) pairs.
//
//lint:hotpath the innermost merge-join of the sparse product; runs per nonzero pair
func sparseDot(aCols []int32, aVals []float64, bCols []int32, bVals []float64) float64 {
	var s float64
	x, y := 0, 0
	for x < len(aCols) && y < len(bCols) {
		switch {
		case aCols[x] < bCols[y]:
			x++
		case aCols[x] > bCols[y]:
			y++
		default:
			s += aVals[x] * bVals[y]
			x++
			y++
		}
	}
	return s
}
