package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func randomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	var entries []Entry
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				entries = append(entries, Entry{Row: int32(i), Col: int32(j), Val: rng.NormFloat64()})
			}
		}
	}
	return NewCSR(rows, cols, entries)
}

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		m := randomCSR(rng, 1+rng.Intn(10), 1+rng.Intn(10), 0.3)
		back := DenseToCSR(m.ToDense())
		if m.NNZ() != back.NNZ() {
			t.Fatalf("round trip changed nnz: %d -> %d", m.NNZ(), back.NNZ())
		}
		if !m.ToDense().Equalish(back.ToDense(), 0) {
			t.Fatal("round trip changed values")
		}
	}
}

func TestCSRDuplicatesSummed(t *testing.T) {
	m := NewCSR(2, 2, []Entry{{0, 1, 2}, {0, 1, 3}, {1, 0, 1}})
	if got := m.At(0, 1); got != 5 {
		t.Errorf("At(0,1) = %g, want 5 (duplicates summed)", got)
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", m.NNZ())
	}
	if got := m.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %g, want 0", got)
	}
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m := randomCSR(rng, rows, cols, 0.4)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := m.MulVec(x)
		want := m.ToDense().MulVec(x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-10 {
				t.Fatalf("MulVec[%d] = %g, want %g", i, got[i], want[i])
			}
		}
		gotT := m.MulVecT(make([]float64, rows))
		for _, v := range gotT {
			if v != 0 {
				t.Fatal("MulVecT of zero vector must be zero")
			}
		}
		y := make([]float64, rows)
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		gt := m.MulVecT(y)
		wt := m.ToDense().Transpose().MulVec(y)
		for i := range gt {
			if math.Abs(gt[i]-wt[i]) > 1e-10 {
				t.Fatalf("MulVecT[%d] = %g, want %g", i, gt[i], wt[i])
			}
		}
	}
}

func TestSparseDot(t *testing.T) {
	a := []int32{1, 3, 5}
	av := []float64{1, 2, 3}
	b := []int32{2, 3, 5, 7}
	bv := []float64{9, 4, 5, 6}
	if got := sparseDot(a, av, b, bv); got != 2*4+3*5 {
		t.Errorf("sparseDot = %g, want 23", got)
	}
	if got := sparseDot(nil, nil, b, bv); got != 0 {
		t.Errorf("sparseDot(empty) = %g", got)
	}
}
