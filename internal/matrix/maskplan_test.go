package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// planPattern builds a random symmetric pattern for the plan tests,
// reusing pattern_test's randomPattern and discarding the edge list.
func planPattern(rng *rand.Rand, n int, density float64) *Pattern {
	p, _ := randomPattern(rng, n, density)
	return p
}

// chainOperands builds (mt, a) pairs obeying the CliqueRank chain
// invariant the plan exploits: values are finite and non-negative, some
// rows of mt are entirely zero (dead), a's rows are zero exactly where
// mt's are, and live rows may still contain scattered exact zeros (the
// pow-underflow case the liveness scan must not be fooled by).
func chainOperands(rng *rand.Rand, p *Pattern) (mt, a *PatVec) {
	mt = NewPatVec(p)
	a = NewPatVec(p)
	dead := make([]bool, p.N)
	for i := range dead {
		dead[i] = rng.Float64() < 0.3
	}
	for i := 0; i < p.N; i++ {
		if dead[i] {
			continue
		}
		for s := p.RowPtr[i]; s < p.RowPtr[i+1]; s++ {
			if rng.Float64() < 0.15 {
				mt.Val[s] = 0 // underflow-style zero inside a live row
			} else {
				mt.Val[s] = rng.Float64()
			}
			a.Val[s] = rng.Float64()
		}
	}
	return mt, a
}

// TestMaskPlanMatchesMaskedMulBitwise is the plan's bit-identity property
// test: on random patterns and chain-shaped operands, the gather kernel
// must reproduce TransposeInto + MaskedMulInto to the last bit, for every
// worker count.
func TestMaskPlanMatchesMaskedMulBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		p := planPattern(rng, n, 0.05+rng.Float64()*0.4)
		mt, a := chainOperands(rng, p)

		at := NewPatVec(p)
		a.TransposeInto(at)
		want := NewPatVec(p)
		MaskedMulInto(want, mt, at, 1)

		pl := BuildMaskPlan(mt, 1, 0)
		if pl == nil {
			t.Fatalf("trial %d: plan unexpectedly over the entry ceiling", trial)
		}
		for _, w := range []int{1, 2, 4} {
			got := NewPatVec(p)
			pl.MulInto(got, mt, a, w)
			for s := range want.Val {
				if math.Float64bits(got.Val[s]) != math.Float64bits(want.Val[s]) {
					t.Fatalf("trial %d workers=%d: slot %d = %x, want %x",
						trial, w, s, math.Float64bits(got.Val[s]), math.Float64bits(want.Val[s]))
				}
			}
		}
		pl.Release()
	}
}

// TestMaskPlanSkipsDeadWork asserts the liveness filter actually drops
// entries: a half-dead graph's plan must be strictly smaller than the
// all-live plan of the same pattern.
func TestMaskPlanSkipsDeadWork(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := planPattern(rng, 60, 0.3)
	full := NewPatVec(p)
	for s := range full.Val {
		full.Val[s] = 1
	}
	plFull := BuildMaskPlan(full, 1, 0)
	if plFull == nil || plFull.Entries() == 0 {
		t.Fatalf("full plan: %+v", plFull)
	}
	half := NewPatVec(p)
	for i := 0; i < p.N; i += 2 {
		for s := p.RowPtr[i]; s < p.RowPtr[i+1]; s++ {
			half.Val[s] = 1
		}
	}
	plHalf := BuildMaskPlan(half, 1, 0)
	if plHalf == nil {
		t.Fatal("half plan over the ceiling")
	}
	if plHalf.Entries() >= plFull.Entries() {
		t.Fatalf("dead rows not skipped: half=%d full=%d entries", plHalf.Entries(), plFull.Entries())
	}
	plFull.Release()
	plHalf.Release()
}

// TestMaskPlanEntryCeiling asserts the fallback contract: a ceiling the
// layout cannot fit returns nil instead of a truncated plan.
func TestMaskPlanEntryCeiling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := planPattern(rng, 30, 0.5)
	mt := NewPatVec(p)
	for s := range mt.Val {
		mt.Val[s] = 1
	}
	if pl := BuildMaskPlan(mt, 1, 1); pl != nil {
		t.Fatalf("ceiling=1 returned a plan with %d entries", pl.Entries())
	}
}

// TestMaskPlanWorkerIndependentBuild asserts the plan layout itself is a
// pure function of the graph: building with different worker counts must
// produce identical index arrays.
func TestMaskPlanWorkerIndependentBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := planPattern(rng, 50, 0.2)
	mt, _ := chainOperands(rng, p)
	ref := BuildMaskPlan(mt, 1, 0)
	for _, w := range []int{2, 4, 8} {
		pl := BuildMaskPlan(mt, w, 0)
		if pl.Entries() != ref.Entries() || pl.Grain() != ref.Grain() {
			t.Fatalf("workers=%d: entries/grain %d/%d, want %d/%d",
				w, pl.Entries(), pl.Grain(), ref.Entries(), ref.Grain())
		}
		for s := range ref.dstPtr {
			if pl.dstPtr[s] != ref.dstPtr[s] {
				t.Fatalf("workers=%d: dstPtr[%d] differs", w, s)
			}
		}
		for e := range ref.srcMt {
			if pl.srcMt[e] != ref.srcMt[e] || pl.srcA[e] != ref.srcA[e] {
				t.Fatalf("workers=%d: entry %d differs", w, e)
			}
		}
		pl.Release()
	}
	ref.Release()
}
