// Package matrix provides the linear-algebra substrate of the reproduction.
// The original implementation delegated CliqueRank's chained matrix products
// to the Eigen C++ library; this package replaces it with pure-Go dense and
// sparse kernels, parallelized across rows with a worker pool.
package matrix

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix of float64.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewDense allocates a zeroed Rows×Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		//lint:invariant dimension preconditions are programmer errors; tests assert these panics
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewDenseFrom builds a matrix from a slice of rows. All rows must have the
// same length.
func NewDenseFrom(rows [][]float64) *Dense {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			//lint:invariant dimension preconditions are programmer errors; tests assert these panics
			panic(fmt.Sprintf("matrix: ragged row %d: len %d, want %d", i, len(row), c))
		}
		copy(m.Row(i), row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set writes the element at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Mul computes m × b with a cache-friendly i-k-j loop, parallelized across
// row blocks. It panics on dimension mismatch.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.Cols != b.Rows {
		//lint:invariant dimension preconditions are programmer errors; tests assert these panics
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewDense(m.Rows, b.Cols)
	parallelRows(0, m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := m.Row(i)
			crow := out.Row(i)
			for k, aik := range arow {
				if aik == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bkj := range brow {
					crow[j] += aik * bkj
				}
			}
		}
	})
	return out
}

// Hadamard computes the element-wise product m ⊙ b in place on a new matrix.
func (m *Dense) Hadamard(b *Dense) *Dense {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		//lint:invariant dimension preconditions are programmer errors; tests assert these panics
		panic("matrix: Hadamard dimension mismatch")
	}
	out := NewDense(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = v * b.Data[i]
	}
	return out
}

// Transpose returns mᵀ.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Add returns m + b.
func (m *Dense) Add(b *Dense) *Dense {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		//lint:invariant dimension preconditions are programmer errors; tests assert these panics
		panic("matrix: Add dimension mismatch")
	}
	out := NewDense(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Scale returns s·m.
func (m *Dense) Scale(s float64) *Dense {
	out := NewDense(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = s * v
	}
	return out
}

// MulVec computes m · x for a column vector x.
func (m *Dense) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		//lint:invariant dimension preconditions are programmer errors; tests assert these panics
		panic("matrix: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	parallelRows(0, m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			var s float64
			for j, v := range row {
				s += v * x[j]
			}
			out[i] = s
		}
	})
	return out
}

// MaxAbsDiff returns max |m[i] - b[i]|, a convergence measure.
func (m *Dense) MaxAbsDiff(b *Dense) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		//lint:invariant dimension preconditions are programmer errors; tests assert these panics
		panic("matrix: MaxAbsDiff dimension mismatch")
	}
	var d float64
	for i, v := range m.Data {
		if x := math.Abs(v - b.Data[i]); x > d {
			d = x
		}
	}
	return d
}

// Equalish reports whether all elements differ by at most tol.
func (m *Dense) Equalish(b *Dense, tol float64) bool {
	return m.Rows == b.Rows && m.Cols == b.Cols && m.MaxAbsDiff(b) <= tol
}
