package matrix

import (
	"sync"

	"repro/internal/parallel"
)

// MaskPlanMaxEntries is the default ceiling on a plan's gather-entry count
// (BuildMaskPlan with maxEntries <= 0). At 8 bytes per entry it bounds the
// plan's index arrays to ~512 MB; graphs whose intersection structure is
// denser than that fall back to the merge-based MaskedMulInto.
const MaskPlanMaxEntries = 1 << 26

// MaskPlan is the precomputed gather layout of the masked product
// (mt × a) ⊙ pattern. CliqueRank's power loop evaluates that product once
// per step on a *fixed* pattern with *fixed* mt, so the per-slot merge of
// MaskedMulInto — find N(i) ∩ N(j), look up both operands — is redundant
// work after the first step. The plan walks each merge once and flattens
// it into three index arrays:
//
//	dst[s] = Σ_e∈[dstPtr[s],dstPtr[s+1])  mt.Val[srcMt[e]] · a.Val[srcA[e]]
//
// srcA indexes a directly through the pattern's transpose permutation, so
// the per-step TransposeInto pass disappears along with the merges.
//
// The plan is also where dead rows are skipped. A row of mt that is
// all-zero stays all-zero through every iterate of the chain (row i of
// mt × a is a combination of a's rows weighted by mt's row i), so liveness
// is computed once and holds for the whole power loop — a static frontier:
//
//   - slots of a dead row i emit no entries (every term is 0 · a[c,j]);
//   - merge terms through a dead row c emit no entries (a[c,j] is zero at
//     every step).
//
// Both skips drop terms that are exactly +0.0 in MaskedMulInto's
// left-to-right merge sum (all chain values are finite and non-negative),
// and the surviving terms keep their ascending-column order, so the plan
// kernel is bit-identical to the merge kernel — the property test pins it.
//
// The plan holds pooled buffers; call Release when the power loop is done.
type MaskPlan struct {
	p       *Pattern
	entries int
	grain   int
	dstPtr  []int32
	srcMt   []int32
	srcA    []int32
}

// i32Bufs and byteBufs recycle the plan's index and liveness arrays across
// power loops, keeping a steady-state BuildMaskPlan allocation-free.
var (
	i32Bufs  = sync.Pool{New: func() any { b := make([]int32, 0, 1024); return &b }}
	byteBufs = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}
)

func getI32Buf(n int) []int32 {
	bp := i32Bufs.Get().(*[]int32)
	b := *bp
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

func putI32Buf(b []int32) {
	if b == nil {
		return
	}
	b = b[:0]
	i32Bufs.Put(&b)
}

func getByteBuf(n int) []byte {
	bp := byteBufs.Get().(*[]byte)
	b := *bp
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

func putByteBuf(b []byte) {
	if b == nil {
		return
	}
	b = b[:0]
	byteBufs.Put(&b)
}

// BuildMaskPlan precomputes the gather layout of (mt × a) ⊙ pattern for
// the fixed transition matrix mt. It returns nil when the layout would
// exceed maxEntries gather entries (maxEntries <= 0 selects
// MaskPlanMaxEntries) — callers fall back to MaskedMulInto, which computes
// the same bits. The plan depends on mt's values only through row
// liveness, so it stays valid as long as mt is not mutated.
func BuildMaskPlan(mt *PatVec, workers, maxEntries int) *MaskPlan {
	p := mt.P
	nnz := p.NNZ()
	if maxEntries <= 0 {
		maxEntries = MaskPlanMaxEntries
	}
	if maxEntries > 1<<30 {
		maxEntries = 1 << 30
	}
	if nnz == 0 {
		dstPtr := getI32Buf(1)
		dstPtr[0] = 0
		return &MaskPlan{p: p, grain: 1, dstPtr: dstPtr}
	}

	live := getByteBuf(p.N)
	liveGrain := parallel.GrainFor(p.N, nnz, 4096)
	parallel.ForGrain(workers, p.N, liveGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			live[i] = 0
			for s := p.RowPtr[i]; s < p.RowPtr[i+1]; s++ {
				if mt.Val[s] != 0 {
					live[i] = 1
					break
				}
			}
		}
	})

	// Row i's slots are contiguous, so both passes fan out over rows and
	// write disjoint ranges. The grain targets a fixed amount of merge
	// work per chunk: each slot of row i costs ~deg(i)+deg(j).
	avgDeg := nnz/p.N + 1
	rowGrain := parallel.GrainFor(p.N, 2*nnz*avgDeg, 8192)

	// Count pass: dstPtr[s+1] = kept terms of slot s, then a serial prefix
	// sum (with the ceiling check) turns counts into offsets.
	dstPtr := getI32Buf(nnz + 1)
	parallel.ForGrain(workers, p.N, rowGrain, func(lo, hi int) {
		countPlanRows(p, live, lo, hi, dstPtr)
	})
	dstPtr[0] = 0
	var total int64
	for s := 0; s < nnz; s++ {
		total += int64(dstPtr[s+1])
		if total > int64(maxEntries) {
			putI32Buf(dstPtr)
			putByteBuf(live)
			return nil
		}
		dstPtr[s+1] += dstPtr[s]
	}
	entries := int(total)

	srcMt := getI32Buf(entries)
	srcA := getI32Buf(entries)
	parallel.ForGrain(workers, p.N, rowGrain, func(lo, hi int) {
		fillPlanRows(p, live, lo, hi, dstPtr, srcMt, srcA)
	})
	putByteBuf(live)

	return &MaskPlan{
		p:       p,
		entries: entries,
		grain:   parallel.GrainFor(nnz, entries+nnz, 2048),
		dstPtr:  dstPtr,
		srcMt:   srcMt,
		srcA:    srcA,
	}
}

// countPlanRows walks the merge of rows [lo, hi) and records, per slot,
// how many terms survive the liveness filter.
//
//lint:hotpath one full merge pass per power loop; allocation here would defeat the pooled plan buffers
func countPlanRows(p *Pattern, live []byte, lo, hi int, cnt []int32) {
	for i := lo; i < hi; i++ {
		rs, re := p.RowPtr[i], p.RowPtr[i+1]
		if live[i] == 0 {
			for s := rs; s < re; s++ {
				cnt[s+1] = 0
			}
			continue
		}
		for s := rs; s < re; s++ {
			j := p.Col[s]
			ai, bi := rs, p.RowPtr[j]
			be := p.RowPtr[j+1]
			var n int32
			for ai < re && bi < be {
				ca, cb := p.Col[ai], p.Col[bi]
				switch {
				case ca < cb:
					ai++
				case ca > cb:
					bi++
				default:
					if live[ca] != 0 {
						n++
					}
					ai++
					bi++
				}
			}
			cnt[s+1] = n
		}
	}
}

// fillPlanRows repeats the merge of countPlanRows, writing each surviving
// term's operand slots: srcMt is the slot of mt[i,c] in row i, and srcA is
// the slot of a[c,j] — reached through the transpose permutation, so the
// kernel gathers from a directly without a transpose pass.
//
//lint:hotpath one full merge pass per power loop; allocation here would defeat the pooled plan buffers
func fillPlanRows(p *Pattern, live []byte, lo, hi int, dstPtr, srcMt, srcA []int32) {
	for i := lo; i < hi; i++ {
		rs, re := p.RowPtr[i], p.RowPtr[i+1]
		if live[i] == 0 {
			continue
		}
		for s := rs; s < re; s++ {
			j := p.Col[s]
			ai, bi := rs, p.RowPtr[j]
			be := p.RowPtr[j+1]
			e := dstPtr[s]
			for ai < re && bi < be {
				ca, cb := p.Col[ai], p.Col[bi]
				switch {
				case ca < cb:
					ai++
				case ca > cb:
					bi++
				default:
					if live[ca] != 0 {
						srcMt[e] = ai
						srcA[e] = p.tIdx[bi]
						e++
					}
					ai++
					bi++
				}
			}
		}
	}
}

// Entries returns the number of gather entries in the plan.
func (pl *MaskPlan) Entries() int { return pl.entries }

// Grain returns the slot-chunk size precomputed for this plan's gather
// density — a pure function of the graph, so the chunk set (and therefore
// the result bits of the disjoint-write kernel) is worker-independent.
func (pl *MaskPlan) Grain() int { return pl.grain }

// MulRangeInto evaluates dst[s] for slots s in [lo, hi). Chunks write
// disjoint ranges of dst.Val, so fanning the full [0, nnz) range out
// through parallel.ForGrain with any worker count produces identical bits.
// The caller is responsible for passing the operands the plan was built
// for (CliqueRank hoists one closure over the loop); MulInto is the
// checked form.
//
//lint:hotpath the fusion product's inner kernel, called every power-loop step; the AllocsPerRun tests pin its steady state at zero
func (pl *MaskPlan) MulRangeInto(dst, mt, a *PatVec, lo, hi int) {
	dstPtr, srcMt, srcA := pl.dstPtr, pl.srcMt, pl.srcA
	mv, av, dv := mt.Val, a.Val, dst.Val
	for s := lo; s < hi; s++ {
		var sum float64
		for e := dstPtr[s]; e < dstPtr[s+1]; e++ {
			sum += mv[srcMt[e]] * av[srcA[e]]
		}
		dv[s] = sum
	}
}

// MulInto writes (mt × a) ⊙ pattern into dst using the plan, fanning slot
// chunks out over workers goroutines. It is the validated counterpart of
// MulRangeInto and is bit-identical to TransposeInto + MaskedMulInto.
func (pl *MaskPlan) MulInto(dst, mt, a *PatVec, workers int) *PatVec {
	if mt.P != pl.p || a.P != pl.p || dst.P != pl.p {
		//lint:invariant graph-structure preconditions are programmer errors; tests assert these panics
		panic("matrix: MulInto requires operands on the plan's pattern")
	}
	parallel.ForGrain(workers, pl.p.NNZ(), pl.grain, func(lo, hi int) {
		pl.MulRangeInto(dst, mt, a, lo, hi)
	})
	return dst
}

// Release returns the plan's pooled buffers. The plan must not be used
// afterwards.
func (pl *MaskPlan) Release() {
	if pl == nil {
		return
	}
	// Put order mirrors the reversed Get order of BuildMaskPlan (dstPtr,
	// srcMt, srcA): the pool is LIFO, so the next build pops buffers of
	// matching capacity instead of re-allocating the large entry arrays.
	putI32Buf(pl.srcA)
	putI32Buf(pl.srcMt)
	putI32Buf(pl.dstPtr)
	pl.dstPtr, pl.srcMt, pl.srcA = nil, nil, nil
}
