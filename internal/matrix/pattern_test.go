package matrix

import (
	"math/rand"
	"testing"
)

func randomPattern(rng *rand.Rand, n int, density float64) (*Pattern, []Edge) {
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				edges = append(edges, Edge{int32(i), int32(j)})
			}
		}
	}
	return NewPattern(n, edges), edges
}

func randomPatVec(rng *rand.Rand, p *Pattern) *PatVec {
	v := NewPatVec(p)
	for i := range v.Val {
		v.Val[i] = rng.Float64()
	}
	return v
}

func TestPatternStructure(t *testing.T) {
	p := NewPattern(4, []Edge{{0, 1}, {1, 2}, {0, 3}})
	if p.NNZ() != 6 {
		t.Fatalf("NNZ = %d, want 6", p.NNZ())
	}
	if p.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2", p.Degree(1))
	}
	if !p.Has(1, 0) || !p.Has(0, 1) {
		t.Error("pattern must be symmetric")
	}
	if p.Has(2, 3) {
		t.Error("absent edge reported present")
	}
	if p.Slot(2, 3) != -1 {
		t.Error("Slot of absent edge must be -1")
	}
}

func TestPatternTransposeIdx(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p, _ := randomPattern(rng, 15, 0.3)
	v := randomPatVec(rng, p)
	vt := v.Transpose()
	for i := 0; i < p.N; i++ {
		for _, j := range p.Neighbors(i) {
			if v.At(i, int(j)) != vt.At(int(j), i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if back := vt.Transpose(); !back.ToDense().Equalish(v.ToDense(), 0) {
		t.Error("double transpose is not identity")
	}
}

// TestMaskedMulMatchesDense is the core correctness property for CliqueRank:
// MaskedMul(mt, aᵀ) must equal (mt × a) ⊙ M_n computed densely.
func TestMaskedMulMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(18)
		p, _ := randomPattern(rng, n, 0.15+rng.Float64()*0.5)
		if p.NNZ() == 0 {
			continue
		}
		mt := randomPatVec(rng, p)
		a := randomPatVec(rng, p)

		got := MaskedMul(mt, a.Transpose()).ToDense()

		mask := NewPatVec(p)
		for i := range mask.Val {
			mask.Val[i] = 1
		}
		want := mt.ToDense().Mul(a.ToDense()).Hadamard(mask.ToDense())

		if !got.Equalish(want, 1e-10) {
			t.Fatalf("trial %d (n=%d, nnz=%d): MaskedMul differs from dense reference", trial, n, p.NNZ())
		}
	}
}

func TestMaskedMulZeroOperand(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p, _ := randomPattern(rng, 10, 0.4)
	zero := NewPatVec(p)
	a := randomPatVec(rng, p)
	out := MaskedMul(zero, a.Transpose())
	for _, v := range out.Val {
		if v != 0 {
			t.Fatal("0 × a must be 0")
		}
	}
}

func TestAddScaled(t *testing.T) {
	p := NewPattern(3, []Edge{{0, 1}, {1, 2}})
	a := NewPatVec(p)
	b := NewPatVec(p)
	for i := range b.Val {
		b.Val[i] = float64(i + 1)
	}
	a.AddScaled(b, 2)
	for i := range a.Val {
		if a.Val[i] != 2*float64(i+1) {
			t.Fatalf("AddScaled[%d] = %g", i, a.Val[i])
		}
	}
}

func TestPatternRejectsSelfLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on self loop")
		}
	}()
	NewPattern(2, []Edge{{1, 1}})
}

func TestPatternRejectsDuplicateEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate edge")
		}
	}()
	NewPattern(3, []Edge{{0, 1}, {0, 1}})
}

func TestParallelRangeCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		hit := make([]bool, n)
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		ParallelRange(n, func(lo, hi int) {
			<-mu
			for i := lo; i < hi; i++ {
				if hit[i] {
					t.Errorf("index %d visited twice", i)
				}
				hit[i] = true
			}
			mu <- struct{}{}
		})
		for i, h := range hit {
			if !h {
				t.Errorf("n=%d: index %d not visited", n, i)
			}
		}
	}
}
