package matrix

import (
	"fmt"
	"slices"
	"sort"
)

// Edge is an undirected edge between nodes I < J.
type Edge struct {
	I, J int32
}

// Pattern is a fixed symmetric sparsity pattern over n nodes. CliqueRank's
// recurrence Mᵏ = M_t × (Mᵏ⁻¹ ⊙ M_n) keeps every iterate supported on the
// record-graph adjacency M_n, so all matrices in the chain share one
// Pattern and differ only in their per-slot values. A "slot" is the storage
// index of one directed entry (i, j).
type Pattern struct {
	N      int
	RowPtr []int32
	Col    []int32
	// tIdx[k] is the slot of (j, i) when slot k stores (i, j). It lets a
	// transpose be a single permutation pass.
	tIdx []int32
}

// NewPattern builds the symmetric pattern from undirected edges. Self loops
// and duplicates are rejected because the record graph has neither.
func NewPattern(n int, edges []Edge) *Pattern {
	deg := make([]int32, n)
	for _, e := range edges {
		if e.I == e.J {
			//lint:invariant graph-structure preconditions are programmer errors; tests assert these panics
			panic(fmt.Sprintf("matrix: self loop %d", e.I))
		}
		if e.I < 0 || int(e.I) >= n || e.J < 0 || int(e.J) >= n {
			//lint:invariant graph-structure preconditions are programmer errors; tests assert these panics
			panic(fmt.Sprintf("matrix: edge (%d,%d) out of range n=%d", e.I, e.J, n))
		}
		deg[e.I]++
		deg[e.J]++
	}
	p := &Pattern{N: n, RowPtr: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		p.RowPtr[i+1] = p.RowPtr[i] + deg[i]
	}
	nnz := p.RowPtr[n]
	p.Col = make([]int32, nnz)
	p.tIdx = make([]int32, nnz)
	fill := make([]int32, n)
	copy(fill, p.RowPtr[:n])
	for _, e := range edges {
		p.Col[fill[e.I]] = e.J
		fill[e.I]++
		p.Col[fill[e.J]] = e.I
		fill[e.J]++
	}
	for i := 0; i < n; i++ {
		lo, hi := p.RowPtr[i], p.RowPtr[i+1]
		row := p.Col[lo:hi]
		slices.Sort(row)
		for k := 1; k < len(row); k++ {
			if row[k] == row[k-1] {
				//lint:invariant graph-structure preconditions are programmer errors; tests assert these panics
				panic(fmt.Sprintf("matrix: duplicate edge (%d,%d)", i, row[k]))
			}
		}
	}
	for i := 0; i < n; i++ {
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			j := p.Col[k]
			p.tIdx[k] = int32(p.Slot(int(j), i))
		}
	}
	return p
}

// NNZ returns the number of directed slots (2× the undirected edge count).
func (p *Pattern) NNZ() int { return len(p.Col) }

// Degree returns the number of neighbors of node i.
func (p *Pattern) Degree(i int) int { return int(p.RowPtr[i+1] - p.RowPtr[i]) }

// Neighbors returns the sorted neighbor list of node i.
func (p *Pattern) Neighbors(i int) []int32 { return p.Col[p.RowPtr[i]:p.RowPtr[i+1]] }

// Slot returns the storage index of entry (i, j), or -1 when (i, j) is not
// in the pattern.
func (p *Pattern) Slot(i, j int) int {
	lo, hi := p.RowPtr[i], p.RowPtr[i+1]
	row := p.Col[lo:hi]
	k := sort.Search(len(row), func(k int) bool { return row[k] >= int32(j) })
	if k < len(row) && row[k] == int32(j) {
		return int(lo) + k
	}
	return -1
}

// Has reports whether nodes i and j are adjacent.
func (p *Pattern) Has(i, j int) bool { return p.Slot(i, j) >= 0 }

// TSlot returns the slot of the transposed entry (j, i) given the slot of
// (i, j) — an O(1) lookup of the precomputed transpose permutation, versus
// the O(log deg) binary search of Slot.
func (p *Pattern) TSlot(k int32) int32 { return p.tIdx[k] }

// PatVec is a matrix whose support is exactly a Pattern: Val[k] is the value
// of the directed entry whose coordinates slot k encodes.
type PatVec struct {
	P   *Pattern
	Val []float64
}

// NewPatVec allocates a zero matrix on the pattern.
func NewPatVec(p *Pattern) *PatVec { return &PatVec{P: p, Val: make([]float64, p.NNZ())} }

// Clone deep-copies the values (the pattern is shared).
func (v *PatVec) Clone() *PatVec {
	out := NewPatVec(v.P)
	copy(out.Val, v.Val)
	return out
}

// Transpose permutes values so that out[(i,j)] = v[(j,i)].
func (v *PatVec) Transpose() *PatVec {
	out := NewPatVec(v.P)
	v.TransposeInto(out)
	return out
}

// TransposeInto writes vᵀ into out, which must share v's pattern. It is the
// allocation-free form of Transpose used by the CliqueRank power loop.
//
//lint:hotpath allocation-free by contract; the CliqueRank power loop calls it every iteration
func (v *PatVec) TransposeInto(out *PatVec) {
	if v.P != out.P {
		//lint:invariant graph-structure preconditions are programmer errors; tests assert these panics
		panic("matrix: TransposeInto requires operands on the same pattern")
	}
	for k, t := range v.P.tIdx {
		out.Val[k] = v.Val[t]
	}
}

// RowSlice returns the neighbor columns and values of row i.
func (v *PatVec) RowSlice(i int) ([]int32, []float64) {
	lo, hi := v.P.RowPtr[i], v.P.RowPtr[i+1]
	return v.P.Col[lo:hi], v.Val[lo:hi]
}

// At returns the value at (i, j), zero when outside the pattern.
func (v *PatVec) At(i, j int) float64 {
	if s := v.P.Slot(i, j); s >= 0 {
		return v.Val[s]
	}
	return 0
}

// ToDense expands to a dense matrix (tests, small graphs).
func (v *PatVec) ToDense() *Dense {
	d := NewDense(v.P.N, v.P.N)
	for i := 0; i < v.P.N; i++ {
		cols, vals := v.RowSlice(i)
		row := d.Row(i)
		for k, c := range cols {
			row[c] = vals[k]
		}
	}
	return d
}

// MaskedMul computes (mt × a) ⊙ pattern, i.e. the CliqueRank step
// Aᵏ = (M_t × Aᵏ⁻¹) ⊙ M_n, without ever materializing the full product.
// at must be a.Transpose(); passing it explicitly lets callers reuse one
// transpose per step. For each pattern entry (i, j) the result is the sparse
// dot product of row i of mt with row j of at (= column j of a), an
// O(deg(i)+deg(j)) merge.
func MaskedMul(mt, at *PatVec) *PatVec {
	return MaskedMulInto(NewPatVec(mt.P), mt, at, 0)
}

// MaskedMulInto is the buffer-reusing, worker-aware form of MaskedMul: it
// writes (mt × a) ⊙ pattern into dst (which must share the operands'
// pattern) and returns dst. Rows are fanned out through the deterministic
// scheduler, and each row writes a disjoint slice of dst.Val, so the result
// is bit-identical for every worker count. workers < 1 selects GOMAXPROCS.
//
//lint:hotpath the fusion product's inner kernel; the AllocsPerRun tests pin its steady state at zero
func MaskedMulInto(dst, mt, at *PatVec, workers int) *PatVec {
	if mt.P != at.P || dst.P != mt.P {
		//lint:invariant graph-structure preconditions are programmer errors; tests assert these panics
		panic("matrix: MaskedMul requires operands on the same pattern")
	}
	p := mt.P
	parallelRows(workers, p.N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mtCols, mtVals := mt.RowSlice(i)
			if len(mtCols) == 0 {
				for s := p.RowPtr[i]; s < p.RowPtr[i+1]; s++ {
					dst.Val[s] = 0
				}
				continue
			}
			for s := p.RowPtr[i]; s < p.RowPtr[i+1]; s++ {
				j := p.Col[s]
				atCols, atVals := at.RowSlice(int(j))
				dst.Val[s] = sparseDot(mtCols, mtVals, atCols, atVals)
			}
		}
	})
	return dst
}

// AddScaled accumulates v += s·w in place.
func (v *PatVec) AddScaled(w *PatVec, s float64) {
	if v.P != w.P {
		//lint:invariant graph-structure preconditions are programmer errors; tests assert these panics
		panic("matrix: AddScaled requires operands on the same pattern")
	}
	for k, x := range w.Val {
		v.Val[k] += s * x
	}
}
