package similarity

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/blocking"
	"repro/internal/textproc"
)

func setup(texts ...string) (*textproc.Corpus, *blocking.Graph) {
	c := textproc.BuildCorpus(texts, textproc.CorpusOptions{Tokenize: textproc.DefaultTokenizeOptions()})
	g, err := blocking.Build(c, nil, blocking.Options{})
	if err != nil {
		panic(err)
	}
	return c, g
}

func TestJaccardKnown(t *testing.T) {
	c, g := setup("aa bb cc", "aa bb dd", "ee ff")
	scores := Jaccard(c, g)
	id, ok := g.PairID(0, 1)
	if !ok {
		t.Fatal("pair (0,1) missing")
	}
	// intersection {aa,bb}=2, union {aa,bb,cc,dd}=4
	if got := scores[id]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("jaccard(0,1) = %g, want 0.5", got)
	}
	if _, ok := g.PairID(0, 2); ok {
		t.Error("records with no shared term must not be candidates")
	}
}

func TestJaccardIdenticalRecords(t *testing.T) {
	c, g := setup("aa bb", "aa bb")
	scores := Jaccard(c, g)
	id, _ := g.PairID(0, 1)
	if scores[id] != 1 {
		t.Errorf("jaccard of identical records = %g, want 1", scores[id])
	}
}

func TestJaccardRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	words := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg"}
	texts := make([]string, 30)
	for i := range texts {
		k := 1 + rng.Intn(5)
		parts := make([]string, k)
		for j := range parts {
			parts[j] = words[rng.Intn(len(words))]
		}
		texts[i] = strings.Join(parts, " ")
	}
	c, g := setup(texts...)
	for _, s := range Jaccard(c, g) {
		if s <= 0 || s > 1 {
			t.Fatalf("jaccard out of (0,1]: %g", s)
		}
	}
}

func TestTFIDFCosine(t *testing.T) {
	c, g := setup(
		"sony turntable pslx350h",
		"sony turntable pslx350h",
		"sony receiver str100",
		"panasonic phone kxtg200",
	)
	m := NewTFIDF(c)
	if got := m.Cosine(0, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("cosine of identical records = %g, want 1", got)
	}
	// Pair (0,2) shares only the common term "sony"; must score lower than
	// the identical pair.
	if m.Cosine(0, 2) >= m.Cosine(0, 1) {
		t.Error("cosine must rank shared-rare-term pair above shared-common-term pair")
	}
	scores := TFIDFCosine(c, g)
	for _, s := range scores {
		if s < 0 || s > 1+1e-12 {
			t.Fatalf("cosine out of [0,1]: %g", s)
		}
	}
}

func TestTFIDFIDFOrdering(t *testing.T) {
	// df(common)=4 > df(rare)=2, so idf(rare) > idf(common).
	c, _ := setup("common rare", "common rare", "common x1", "common x2")
	m := NewTFIDF(c)
	common, rare := c.Index["common"], c.Index["rare"]
	if m.idf[rare] <= m.idf[common] {
		t.Errorf("idf(rare)=%g must exceed idf(common)=%g", m.idf[rare], m.idf[common])
	}
}

func TestLevenshteinKnown(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		{"a", "b", 1},
		{"ab", "ba", 2},
	}
	for _, tc := range tests {
		if got := Levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	symmetric := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error("symmetry:", err)
	}
	identity := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Error("identity:", err)
	}
	triangle := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(triangle, cfg); err != nil {
		t.Error("triangle inequality:", err)
	}
}

func TestJaroKnown(t *testing.T) {
	if got := Jaro("martha", "marhta"); math.Abs(got-0.944444) > 1e-4 {
		t.Errorf("Jaro(martha, marhta) = %g, want ~0.9444", got)
	}
	if got := Jaro("dixon", "dicksonx"); math.Abs(got-0.766667) > 1e-4 {
		t.Errorf("Jaro(dixon, dicksonx) = %g, want ~0.7667", got)
	}
	if Jaro("abc", "xyz") != 0 {
		t.Error("disjoint strings must score 0")
	}
	if Jaro("", "") != 1 {
		t.Error("two empty strings must score 1")
	}
	if Jaro("a", "") != 0 {
		t.Error("one empty string must score 0")
	}
}

func TestJaroWinklerKnown(t *testing.T) {
	if got := JaroWinkler("martha", "marhta"); math.Abs(got-0.961111) > 1e-4 {
		t.Errorf("JaroWinkler(martha, marhta) = %g, want ~0.9611", got)
	}
	// Winkler boost must never lower the score.
	pairs := [][2]string{{"abcdef", "abcxyz"}, {"hello", "hallo"}, {"x", "y"}}
	for _, p := range pairs {
		if JaroWinkler(p[0], p[1]) < Jaro(p[0], p[1])-1e-12 {
			t.Errorf("JaroWinkler(%q,%q) below Jaro", p[0], p[1])
		}
	}
}

func TestJaroSimilarityProperties(t *testing.T) {
	f := func(a, b string) bool {
		s := Jaro(a, b)
		return s >= 0 && s <= 1 && math.Abs(s-Jaro(b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMongeElkan(t *testing.T) {
	got := MongeElkan(
		[]string{"peter", "christen"},
		[]string{"petra", "christian"},
		JaroWinkler,
	)
	if got <= 0.7 || got >= 1 {
		t.Errorf("MongeElkan = %g, want in (0.7, 1)", got)
	}
	if MongeElkan(nil, []string{"x"}, JaroWinkler) != 0 {
		t.Error("empty left side must score 0")
	}
	if got := MongeElkan([]string{"abc"}, []string{"abc"}, JaroWinkler); got != 1 {
		t.Errorf("identical tokens = %g, want 1", got)
	}
}

func TestDiceOverlap(t *testing.T) {
	a := []string{"aa", "bb", "cc"}
	b := []string{"bb", "cc", "dd", "ee"}
	if got := Dice(a, b); math.Abs(got-2.0*2/7) > 1e-12 {
		t.Errorf("Dice = %g, want 4/7", got)
	}
	if got := Overlap(a, b); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Overlap = %g, want 2/3", got)
	}
	if Dice(nil, nil) != 0 || Overlap(nil, b) != 0 {
		t.Error("empty sets must score 0")
	}
	if Overlap(a, a) != 1 {
		t.Error("overlap of identical sets must be 1")
	}
}

func TestSoftTFIDFExactMatchEqualsCosine(t *testing.T) {
	// With no near-miss tokens, SoftTFIDF reduces to TF-IDF cosine.
	c, g := setup(
		"alpha beta gamma",
		"alpha beta delta",
		"zzz yyy xxx",
	)
	soft := SoftTFIDFScores(c, g)
	cosine := TFIDFCosine(c, g)
	id, _ := g.PairID(0, 1)
	if math.Abs(soft[id]-cosine[id]) > 1e-9 {
		t.Errorf("SoftTFIDF %g != cosine %g without near-misses", soft[id], cosine[id])
	}
}

func TestSoftTFIDFBridgesTypos(t *testing.T) {
	// "delicatessen" vs "delicatessan": no exact token match beyond the
	// shared anchor, but the secondary metric bridges the typo.
	c, g := setup(
		"arts delicatessen ventura",
		"arts delicatessan ventura",
		"arts gallery museum",
	)
	soft := SoftTFIDFScores(c, g)
	cosine := TFIDFCosine(c, g)
	dup, _ := g.PairID(0, 1)
	if soft[dup] <= cosine[dup] {
		t.Errorf("SoftTFIDF %g must exceed plain cosine %g on typo'd duplicates", soft[dup], cosine[dup])
	}
	for id, s := range soft {
		if s < 0 || s > 1+1e-9 {
			t.Errorf("SoftTFIDF score %d out of range: %g", id, s)
		}
	}
}

func TestSoftTFIDFThetaGate(t *testing.T) {
	c, _ := setup("alpha", "omega")
	m := NewSoftTFIDF(c)
	m.Theta = 1.0 // only exact matches count
	if got := m.Similarity(0, 1); got != 0 {
		t.Errorf("theta=1 must zero out non-identical tokens, got %g", got)
	}
}

func TestMongeElkanScoresSymmetric(t *testing.T) {
	c, g := setup(
		"peter christen smith",
		"petra christian smith",
		"unrelated words here",
	)
	scores := MongeElkanScores(c, g)
	id, _ := g.PairID(0, 1)
	if scores[id] <= 0.7 || scores[id] > 1 {
		t.Errorf("MongeElkan score = %g, want in (0.7, 1]", scores[id])
	}
}
