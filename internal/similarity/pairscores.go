// Package similarity implements the string-distance baseline family of the
// paper (§II-A, §VII-B): token-set Jaccard and TF-IDF cosine over candidate
// pairs, plus the classic character-based metrics (Levenshtein, Jaro,
// Jaro-Winkler) and the Monge-Elkan field-matching scheme the related work
// builds on.
package similarity

import (
	"math"

	"repro/internal/blocking"
	"repro/internal/textproc"
)

// Jaccard scores every candidate pair with |A∩B| / |A∪B| over the records'
// term sets. Non-candidate pairs implicitly score 0 (they share no term).
func Jaccard(c *textproc.Corpus, g *blocking.Graph) []float64 {
	out := make([]float64, g.NumPairs())
	for id, p := range g.Pairs {
		a, b := c.Docs[p.I], c.Docs[p.J]
		inter := textproc.IntersectCount(a, b)
		union := len(a) + len(b) - inter
		if union > 0 {
			out[id] = float64(inter) / float64(union)
		}
	}
	return out
}

// TFIDF holds per-record TF-IDF vectors for cosine scoring.
type TFIDF struct {
	corpus *textproc.Corpus
	// weights[r] maps term -> tf·idf aligned with corpus.Docs[r].
	weights [][]float64
	norms   []float64
	idf     []float64
}

// NewTFIDF computes tf·idf weights with tf = raw term frequency inside the
// record and idf = log(1 + n/df), the smoothed variant that keeps df = n
// terms at non-zero weight.
func NewTFIDF(c *textproc.Corpus) *TFIDF {
	n := float64(c.NumRecords())
	m := &TFIDF{
		corpus:  c,
		weights: make([][]float64, c.NumRecords()),
		norms:   make([]float64, c.NumRecords()),
		idf:     make([]float64, c.NumTerms()),
	}
	for t, df := range c.DF {
		if df > 0 {
			m.idf[t] = math.Log(1 + n/float64(df))
		}
	}
	for r, doc := range c.Docs {
		tf := make(map[int32]int, len(doc))
		for _, t := range c.Seqs[r] {
			tf[t]++
		}
		w := make([]float64, len(doc))
		var norm float64
		for k, t := range doc {
			w[k] = float64(tf[t]) * m.idf[t]
			norm += w[k] * w[k]
		}
		m.weights[r] = w
		m.norms[r] = math.Sqrt(norm)
	}
	return m
}

// Cosine returns the TF-IDF cosine similarity of records i and j.
func (m *TFIDF) Cosine(i, j int) float64 {
	if m.norms[i] == 0 || m.norms[j] == 0 {
		return 0
	}
	a, b := m.corpus.Docs[i], m.corpus.Docs[j]
	wa, wb := m.weights[i], m.weights[j]
	var dot float64
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] < b[y]:
			x++
		case a[x] > b[y]:
			y++
		default:
			dot += wa[x] * wb[y]
			x++
			y++
		}
	}
	return dot / (m.norms[i] * m.norms[j])
}

// TFIDFCosine scores every candidate pair with TF-IDF cosine similarity.
func TFIDFCosine(c *textproc.Corpus, g *blocking.Graph) []float64 {
	m := NewTFIDF(c)
	out := make([]float64, g.NumPairs())
	for id, p := range g.Pairs {
		out[id] = m.Cosine(int(p.I), int(p.J))
	}
	return out
}
