package similarity

import (
	"repro/internal/blocking"
	"repro/internal/textproc"
)

// SoftTFIDF implements the hybrid metric of Cohen, Ravikumar & Fienberg
// (the paper's ref [15]): TF-IDF cosine generalized so that tokens need not
// match exactly — a secondary character-level similarity (Jaro-Winkler)
// above a threshold θ counts as a (discounted) match. It bridges the
// token-based and character-based families of §II-A and is robust to the
// typo noise that defeats plain set overlap.
type SoftTFIDF struct {
	tfidf *TFIDF
	// Inner is the secondary similarity; nil means Jaro-Winkler.
	Inner func(a, b string) float64
	// Theta is the secondary-similarity threshold (0.9 in the original).
	Theta float64
}

// NewSoftTFIDF builds the metric over a corpus.
func NewSoftTFIDF(c *textproc.Corpus) *SoftTFIDF {
	return &SoftTFIDF{tfidf: NewTFIDF(c), Inner: JaroWinkler, Theta: 0.9}
}

// Similarity returns the SoftTFIDF score of records i and j:
//
//	Σ_{w ∈ CLOSE(θ,i,j)} V(w,i) · V(close(w),j) · inner(w, close(w))
//
// where V are the L2-normalized tf·idf weights and close(w) is w's most
// similar token in j with inner similarity ≥ θ.
func (m *SoftTFIDF) Similarity(i, j int) float64 {
	c := m.tfidf.corpus
	if m.tfidf.norms[i] == 0 || m.tfidf.norms[j] == 0 {
		return 0
	}
	inner := m.Inner
	if inner == nil {
		inner = JaroWinkler
	}
	var sum float64
	for xi, ti := range c.Docs[i] {
		best, bestIdx := 0.0, -1
		for yj, tj := range c.Docs[j] {
			var sim float64
			if ti == tj {
				sim = 1
			} else {
				sim = inner(c.Terms[ti], c.Terms[tj])
			}
			if sim > best {
				best, bestIdx = sim, yj
			}
		}
		if bestIdx < 0 || best < m.Theta {
			continue
		}
		vi := m.tfidf.weights[i][xi] / m.tfidf.norms[i]
		vj := m.tfidf.weights[j][bestIdx] / m.tfidf.norms[j]
		sum += vi * vj * best
	}
	return sum
}

// SoftTFIDFScores scores every candidate pair.
func SoftTFIDFScores(c *textproc.Corpus, g *blocking.Graph) []float64 {
	m := NewSoftTFIDF(c)
	out := make([]float64, g.NumPairs())
	for id, p := range g.Pairs {
		out[id] = m.Similarity(int(p.I), int(p.J))
	}
	return out
}

// MongeElkanScores scores every candidate pair with the Monge-Elkan field
// match over the records' surface tokens, using Jaro-Winkler as the inner
// metric, symmetrized as the mean of both directions (the asymmetric
// original is order-sensitive).
func MongeElkanScores(c *textproc.Corpus, g *blocking.Graph) []float64 {
	words := make([][]string, c.NumRecords())
	for r, doc := range c.Docs {
		ws := make([]string, len(doc))
		for k, t := range doc {
			ws[k] = c.Terms[t]
		}
		words[r] = ws
	}
	out := make([]float64, g.NumPairs())
	for id, p := range g.Pairs {
		a, b := words[p.I], words[p.J]
		out[id] = (MongeElkan(a, b, JaroWinkler) + MongeElkan(b, a, JaroWinkler)) / 2
	}
	return out
}
