package similarity

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSoundexKnownCodes(t *testing.T) {
	// Canonical examples from the Soundex specification.
	tests := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"}, // h does not separate s and c
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"}, // cz collapses, vowel separates
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"Smith", "S530"},
		{"Smyth", "S530"},
		{"Washington", "W252"},
		{"Lee", "L000"},
		{"Gutierrez", "G362"},
		{"Jackson", "J250"},
	}
	for _, tc := range tests {
		if got := Soundex(tc.in); got != tc.want {
			t.Errorf("Soundex(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSoundexEdgeCases(t *testing.T) {
	if Soundex("") != "" {
		t.Error("empty word must encode empty")
	}
	if Soundex("123") != "" {
		t.Error("letterless word must encode empty")
	}
	if got := Soundex("a"); got != "A000" {
		t.Errorf("Soundex(a) = %q, want A000", got)
	}
	if Soundex("SMITH") != Soundex("smith") {
		t.Error("Soundex must be case-insensitive")
	}
}

func TestSoundexEqual(t *testing.T) {
	if !SoundexEqual("Smith", "Smyth") {
		t.Error("Smith/Smyth must sound alike")
	}
	if SoundexEqual("Smith", "Jones") {
		t.Error("Smith/Jones must differ")
	}
	if SoundexEqual("", "") {
		t.Error("empty words must not be considered equal")
	}
}

func TestSoundexShapeProperty(t *testing.T) {
	f := func(s string) bool {
		code := Soundex(s)
		if code == "" {
			return true
		}
		if len(code) != 4 {
			return false
		}
		if code[0] < 'A' || code[0] > 'Z' {
			return false
		}
		for _, c := range code[1:] {
			if c < '0' || c > '6' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQGrams(t *testing.T) {
	got := QGrams("ab", 2)
	want := []string{"#a", "ab", "b#"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("QGrams(ab, 2) = %v, want %v", got, want)
	}
	if QGrams("", 2) != nil {
		t.Error("empty word must have no q-grams")
	}
	if got := QGrams("a", 3); len(got) != 3 {
		t.Errorf("QGrams(a,3) = %v, want 3 padded trigrams", got)
	}
}

func TestQGramSim(t *testing.T) {
	if got := QGramSim("smith", "smith", 2); got != 1 {
		t.Errorf("identical words = %g, want 1", got)
	}
	typo := QGramSim("delicatessen", "delicatessan", 2)
	if typo < 0.7 || typo >= 1 {
		t.Errorf("one-typo similarity = %g, want in [0.7, 1)", typo)
	}
	if far := QGramSim("smith", "jones", 2); far >= typo {
		t.Errorf("unrelated words %g must score below typo pair %g", far, typo)
	}
	if QGramSim("", "x", 2) != 0 {
		t.Error("empty word must score 0")
	}
}

func TestQGramSimSymmetricBounded(t *testing.T) {
	f := func(a, b string) bool {
		s := QGramSim(a, b, 2)
		return s >= 0 && s <= 1 && math.Abs(s-QGramSim(b, a, 2)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
