package similarity

// Character-based string metrics (§II-A family). These are not used by the
// fusion framework itself but complete the library's distance-based
// baseline coverage and power the Monge-Elkan field matcher.

// Levenshtein returns the edit distance between a and b with unit costs for
// insertion, deletion and substitution. It runs in O(len(a)·len(b)) time and
// O(min) space.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSim normalizes edit distance into a similarity in [0, 1]:
// 1 − dist/max(len). Two empty strings are defined as similarity 1.
func LevenshteinSim(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	m := la
	if lb > m {
		m = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// Jaro returns the Jaro similarity in [0, 1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := len(ra)
	if len(rb) > window {
		window = len(rb)
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, len(ra))
	matchB := make([]bool, len(rb))
	matches := 0
	for i := range ra {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(rb) {
			hi = len(rb)
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-t)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a common prefix of
// up to 4 runes, with the standard scaling factor 0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	ra, rb := []rune(a), []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// MongeElkan computes the field-matching similarity of Monge & Elkan
// (paper ref [1]): the average over tokens of a of the best inner-metric
// similarity against any token of b.
func MongeElkan(a, b []string, inner func(string, string) float64) float64 {
	if len(a) == 0 {
		return 0
	}
	var sum float64
	for _, ta := range a {
		best := 0.0
		for _, tb := range b {
			if s := inner(ta, tb); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(a))
}

// Dice returns the Sørensen–Dice coefficient of two token sets.
func Dice(a, b []string) float64 {
	if len(a)+len(b) == 0 {
		return 0
	}
	return 2 * float64(intersectStrings(a, b)) / float64(len(dedup(a))+len(dedup(b)))
}

// Overlap returns the overlap coefficient |A∩B| / min(|A|, |B|).
func Overlap(a, b []string) float64 {
	da, db := dedup(a), dedup(b)
	if len(da) == 0 || len(db) == 0 {
		return 0
	}
	m := len(da)
	if len(db) < m {
		m = len(db)
	}
	return float64(intersectStrings(a, b)) / float64(m)
}

func dedup(a []string) map[string]struct{} {
	s := make(map[string]struct{}, len(a))
	for _, x := range a {
		s[x] = struct{}{}
	}
	return s
}

func intersectStrings(a, b []string) int {
	sa := dedup(a)
	n := 0
	for x := range dedup(b) {
		if _, ok := sa[x]; ok {
			n++
		}
	}
	return n
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
