package similarity

import "strings"

// Phonetic encodings for name matching — the classic record-linkage
// companions of the §II-A string metrics. Two name variants that sound
// alike ("Smith"/"Smyth") map to the same code even when their edit
// distance is non-trivial.

// soundexCode maps a letter to its Soundex digit, or 0 for vowels and the
// ignored letters h/w/y.
func soundexCode(r byte) byte {
	switch r {
	case 'b', 'f', 'p', 'v':
		return '1'
	case 'c', 'g', 'j', 'k', 'q', 's', 'x', 'z':
		return '2'
	case 'd', 't':
		return '3'
	case 'l':
		return '4'
	case 'm', 'n':
		return '5'
	case 'r':
		return '6'
	}
	return 0
}

// Soundex returns the American Soundex code of a word: the first letter
// followed by three digits (zero-padded). Non-ASCII-letter runes are
// skipped; an empty or letterless input encodes as "".
//
// The classic subtleties are honoured: doubled consonants collapse, letters
// separated by h or w collapse, and letters separated by a vowel do not.
func Soundex(word string) string {
	word = strings.ToLower(word)
	// First letter.
	idx := 0
	for idx < len(word) && (word[idx] < 'a' || word[idx] > 'z') {
		idx++
	}
	if idx == len(word) {
		return ""
	}
	first := word[idx]
	out := []byte{first - 'a' + 'A'}
	lastCode := soundexCode(first)
	for i := idx + 1; i < len(word) && len(out) < 4; i++ {
		ch := word[i]
		if ch < 'a' || ch > 'z' {
			continue
		}
		code := soundexCode(ch)
		switch {
		case code == 0:
			if ch == 'h' || ch == 'w' {
				continue // h/w do not reset the previous code
			}
			lastCode = 0 // vowels reset, allowing repeats across them
		case code != lastCode:
			out = append(out, code)
			lastCode = code
		}
	}
	for len(out) < 4 {
		out = append(out, '0')
	}
	return string(out)
}

// SoundexEqual reports whether two words share a Soundex code.
func SoundexEqual(a, b string) bool {
	ca, cb := Soundex(a), Soundex(b)
	return ca != "" && ca == cb
}

// QGrams returns the padded character q-grams of a word, the
// representation behind q-gram string joins: "smith" with q=2 and padding
// '#' yields #s, sm, mi, it, th, h#. q < 2 is treated as 2.
func QGrams(word string, q int) []string {
	if q < 2 {
		q = 2
	}
	if word == "" {
		return nil
	}
	pad := strings.Repeat("#", q-1)
	padded := pad + strings.ToLower(word) + pad
	runes := []rune(padded)
	if len(runes) < q {
		return []string{string(runes)}
	}
	out := make([]string, 0, len(runes)-q+1)
	for i := 0; i+q <= len(runes); i++ {
		out = append(out, string(runes[i:i+q]))
	}
	return out
}

// QGramSim returns the Dice similarity of two words' q-gram multisets —
// a typo-tolerant alternative to exact token equality.
func QGramSim(a, b string, q int) float64 {
	ga, gb := QGrams(a, q), QGrams(b, q)
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	counts := make(map[string]int, len(ga))
	for _, g := range ga {
		counts[g]++
	}
	inter := 0
	for _, g := range gb {
		if counts[g] > 0 {
			counts[g]--
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(ga)+len(gb))
}
