// Package plot renders minimal, dependency-free SVG charts for the
// Figure 4/5 reproductions: a scatter plot of score(t) against weight rank
// and a line plot of the ITER convergence trace. The goal is "inspectable
// output without leaving the repository", not a charting library.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named sequence of (x, y) points.
type Series struct {
	Name   string
	X, Y   []float64
	Radius float64 // point radius for scatter; stroke width for line
}

// Config controls the chart geometry.
type Config struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
}

func (c Config) withDefaults() Config {
	if c.Width == 0 {
		c.Width = 640
	}
	if c.Height == 0 {
		c.Height = 400
	}
	return c
}

const (
	marginLeft   = 60
	marginRight  = 20
	marginTop    = 36
	marginBottom = 48
)

// palette cycles per series.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e"}

// Scatter renders the series as an SVG scatter plot.
func Scatter(cfg Config, series ...Series) string {
	return render(cfg.withDefaults(), false, series)
}

// Line renders the series as an SVG line plot.
func Line(cfg Config, series ...Series) string {
	return render(cfg.withDefaults(), true, series)
}

func render(cfg Config, line bool, series []Series) string {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if minX > maxX { // no points at all
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}

	plotW := float64(cfg.Width - marginLeft - marginRight)
	plotH := float64(cfg.Height - marginTop - marginBottom)
	sx := func(x float64) float64 { return marginLeft + (x-minX)/(maxX-minX)*plotW }
	sy := func(y float64) float64 { return marginTop + plotH - (y-minY)/(maxY-minY)*plotH }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`,
		cfg.Width, cfg.Height)
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`, cfg.Width, cfg.Height)
	sb.WriteByte('\n')

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginLeft, cfg.Height-marginBottom, cfg.Width-marginRight, cfg.Height-marginBottom)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginLeft, marginTop, marginLeft, cfg.Height-marginBottom)
	sb.WriteByte('\n')

	// Tick labels: min and max on each axis.
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="11" text-anchor="middle">%s</text>`,
		marginLeft, cfg.Height-marginBottom+16, trimNum(minX))
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="11" text-anchor="middle">%s</text>`,
		cfg.Width-marginRight, cfg.Height-marginBottom+16, trimNum(maxX))
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="11" text-anchor="end">%s</text>`,
		marginLeft-6, cfg.Height-marginBottom+4, trimNum(minY))
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="11" text-anchor="end">%s</text>`,
		marginLeft-6, marginTop+4, trimNum(maxY))
	sb.WriteByte('\n')

	// Title and axis labels.
	if cfg.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="14" text-anchor="middle">%s</text>`,
			cfg.Width/2, 20, escape(cfg.Title))
	}
	if cfg.XLabel != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`,
			cfg.Width/2, cfg.Height-10, escape(cfg.XLabel))
	}
	if cfg.YLabel != "" {
		fmt.Fprintf(&sb, `<text x="14" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`,
			cfg.Height/2, cfg.Height/2, escape(cfg.YLabel))
	}
	sb.WriteByte('\n')

	for si, s := range series {
		color := palette[si%len(palette)]
		if line {
			width := s.Radius
			if width == 0 {
				width = 1.5
			}
			var points []string
			for i := range s.X {
				points = append(points, fmt.Sprintf("%.1f,%.1f", sx(s.X[i]), sy(s.Y[i])))
			}
			fmt.Fprintf(&sb, `<polyline fill="none" stroke="%s" stroke-width="%.1f" points="%s"/>`,
				color, width, strings.Join(points, " "))
		} else {
			r := s.Radius
			if r == 0 {
				r = 2
			}
			for i := range s.X {
				fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="0.6"/>`,
					sx(s.X[i]), sy(s.Y[i]), r, color)
			}
		}
		sb.WriteByte('\n')
		// Legend entry.
		lx, ly := cfg.Width-marginRight-130, marginTop+16*si+4
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, lx, ly-9, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="11">%s</text>`, lx+14, ly, escape(s.Name))
		sb.WriteByte('\n')
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func trimNum(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
