package plot

import (
	"strings"
	"testing"
)

func TestScatterWellFormed(t *testing.T) {
	svg := Scatter(Config{Title: "t", XLabel: "x", YLabel: "y"},
		Series{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 0.5}},
		Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}},
	)
	for _, want := range []string{"<svg", "</svg>", "circle", "t</text>", `fill="#1f77b4"`, `fill="#d62728"`} {
		if !strings.Contains(svg, want) {
			t.Errorf("scatter SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<circle") != 5 {
		t.Errorf("circles = %d, want 5", strings.Count(svg, "<circle"))
	}
}

func TestLineWellFormed(t *testing.T) {
	svg := Line(Config{}, Series{Name: "trace", X: []float64{1, 2, 3}, Y: []float64{9, 3, 1}})
	if !strings.Contains(svg, "<polyline") {
		t.Error("line SVG missing polyline")
	}
	if !strings.Contains(svg, "points=") {
		t.Error("polyline missing points")
	}
}

func TestEmptySeriesDoesNotPanic(t *testing.T) {
	svg := Scatter(Config{}, Series{Name: "empty"})
	if !strings.Contains(svg, "</svg>") {
		t.Error("empty chart must still be well-formed")
	}
}

func TestConstantSeries(t *testing.T) {
	// Degenerate ranges (all x equal, all y equal) must not divide by zero.
	svg := Line(Config{}, Series{Name: "c", X: []float64{1, 1, 1}, Y: []float64{2, 2, 2}})
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("degenerate ranges produced non-finite coordinates")
	}
}

func TestEscape(t *testing.T) {
	svg := Scatter(Config{Title: "a<b & c>d"}, Series{Name: "s", X: []float64{0}, Y: []float64{0}})
	if strings.Contains(svg, "a<b") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b &amp; c&gt;d") {
		t.Error("escaped title missing")
	}
}
