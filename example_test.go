package er_test

import (
	"fmt"

	"repro"
)

// ExampleResolve demonstrates the one-call API: hand records in, get
// matched pairs and entity clusters out. No labels, no thresholds to tune.
func ExampleResolve() {
	ds := er.NewDataset("catalog", []er.Record{
		{Text: "sony turntable pslx350h belt drive audio"},
		{Text: "sony pslx350h turntable with dust cover audio"},
		{Text: "pioneer receiver vsx321 surround stereo"},
	})
	res, err := er.Resolve(ds, er.DefaultOptions())
	if err != nil {
		panic(err)
	}
	for _, m := range res.Matches {
		fmt.Printf("records %d and %d refer to the same entity (p=%.2f)\n", m.I, m.J, m.Probability)
	}
	// Output:
	// records 0 and 1 refer to the same entity (p=1.00)
}

// ExampleNewPipeline shows the staged API: inspect candidates, compare
// methods, and read the learned term weights.
func ExampleNewPipeline() {
	ds := er.NewDataset("catalog", []er.Record{
		{Text: "canon powershot a590 digital camera"},
		{Text: "canon a590 powershot camera silver"},
		{Text: "canon printer pixma mp280"},
		{Text: "canon pixma mp280 printer ink"},
	})
	p := er.NewPipeline(ds, er.DefaultOptions())
	out := p.Fusion()

	fmt.Printf("candidate pairs: %d\n", p.NumCandidates())
	weights := map[string]float64{}
	for _, tw := range p.TopTerms(out.TermWeights, 0) {
		weights[tw.Term] = tw.Weight
	}
	// The model code separates entities; the brand is shared by all four
	// records and carries no discriminative signal.
	fmt.Println("model code beats brand:", weights["a590"] > weights["canon"])
	// Output:
	// candidate pairs: 2
	// model code beats brand: true
}

// ExampleDataset_WriteCSV round-trips a dataset through its CSV format.
func ExampleDataset_WriteCSV() {
	ds := er.NewDataset("tiny", []er.Record{
		{Text: "hello world", Entity: "greetings"},
	})
	fmt.Println(ds.NumRecords(), ds.HasGroundTruth())
	// Output:
	// 1 true
}
