package er

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestNewDataset(t *testing.T) {
	d := NewDataset("catalog", []Record{
		{Text: "sony turntable pslx350h", Entity: "a"},
		{Text: "sony pslx350h turntable", Entity: "a"},
		{Text: "pioneer receiver", Entity: "b", Source: 1},
	})
	if d.NumRecords() != 3 {
		t.Fatalf("NumRecords = %d", d.NumRecords())
	}
	if d.NumSources() != 2 {
		t.Errorf("NumSources = %d, want 2", d.NumSources())
	}
	if !d.HasGroundTruth() {
		t.Error("labeled dataset must report ground truth")
	}
	// Records 0,1 same entity, same source: with 2 sources only
	// cross-source pairs count; here (0,1) is same-source so 0 matches.
	if got := d.NumTrueMatches(); got != 0 {
		t.Errorf("NumTrueMatches = %d, want 0 (same-source pair excluded)", got)
	}
}

func TestNewDatasetWithoutLabels(t *testing.T) {
	d := NewDataset("x", []Record{{Text: "aa"}, {Text: "bb"}})
	if d.HasGroundTruth() {
		t.Error("unlabeled dataset must not report ground truth")
	}
}

func TestDatasetCSVRoundTrip(t *testing.T) {
	d := RestaurantReplica(ReplicaConfig{Seed: 3, Scale: 0.05})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(strings.NewReader(buf.String()), "restaurant")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRecords() != d.NumRecords() || back.NumTrueMatches() != d.NumTrueMatches() {
		t.Error("CSV round trip changed the dataset")
	}
}

func TestReplicaConfigDefaults(t *testing.T) {
	// Zero-value config falls back to seed 1, scale 1.
	a := RestaurantReplica(ReplicaConfig{})
	b := RestaurantReplica(ReplicaConfig{Seed: 1, Scale: 1})
	if a.NumRecords() != b.NumRecords() || a.Text(0) != b.Text(0) {
		t.Error("zero-value ReplicaConfig must equal {Seed:1, Scale:1}")
	}
	if a.NumRecords() != 858 {
		t.Errorf("restaurant records = %d, want 858", a.NumRecords())
	}
}

func TestResolveQuickstartScenario(t *testing.T) {
	records := []Record{
		{Text: "sony turntable pslx350h belt drive audio"},
		{Text: "sony pslx350h turntable with dust cover audio"},
		{Text: "pioneer receiver vsx321 surround stereo"},
		{Text: "pioneer vsx321 receiver stereo black"},
		{Text: "canon powershot a590 camera digital"},
	}
	res, err := Resolve(NewDataset("catalog", records), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := map[[2]int]bool{{0, 1}: true, {2, 3}: true}
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %v, want exactly the two duplicate pairs", res.Matches)
	}
	for _, m := range res.Matches {
		if !wantPairs[[2]int{m.I, m.J}] {
			t.Errorf("unexpected match %+v", m)
		}
		if m.Probability < DefaultOptions().Eta {
			t.Errorf("match below eta: %+v", m)
		}
	}
	if res.Evaluation != nil {
		t.Error("unlabeled dataset must not produce evaluation metrics")
	}
	// Clusters: {0,1}, {2,3}, {4}
	if len(res.Clusters) != 3 {
		t.Fatalf("clusters = %v", res.Clusters)
	}
	if len(res.Clusters[0]) != 2 || len(res.Clusters[2]) != 1 {
		t.Errorf("cluster shape wrong: %v", res.Clusters)
	}
}

func TestResolveReportsEvaluation(t *testing.T) {
	d := RestaurantReplica(ReplicaConfig{Seed: 1, Scale: 0.25})
	res, err := Resolve(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluation == nil {
		t.Fatal("labeled dataset must produce evaluation metrics")
	}
	if res.Evaluation.F1 <= 0.5 {
		t.Errorf("replica F1 = %.3f, expected a working pipeline (> 0.5)", res.Evaluation.F1)
	}
	if res.GraphNodes != d.NumRecords() {
		t.Errorf("graph nodes = %d, want %d", res.GraphNodes, d.NumRecords())
	}
}

// TestResolveShardingBitIdentical pins the public contract of the default
// component-sharded rank path: Resolve with sharding (the default) must
// reproduce the DisableSharding run bit for bit — probabilities,
// similarities, matches, clusters and graph aggregates — at every worker
// count. This is the end-to-end face of the core determinism suite.
func TestResolveShardingBitIdentical(t *testing.T) {
	d := ProductReplica(ReplicaConfig{Seed: 1, Scale: 0.25})
	opts := DefaultOptions()
	opts.DisableSharding = true
	opts.Workers = 1
	want, err := Resolve(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		opts := DefaultOptions()
		opts.Workers = w
		got, err := Resolve(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.GraphNodes != want.GraphNodes || got.GraphEdges != want.GraphEdges {
			t.Fatalf("workers=%d: graph %d/%d, want %d/%d",
				w, got.GraphNodes, got.GraphEdges, want.GraphNodes, want.GraphEdges)
		}
		if len(got.Probabilities) != len(want.Probabilities) {
			t.Fatalf("workers=%d: probabilities length %d != %d",
				w, len(got.Probabilities), len(want.Probabilities))
		}
		for i := range want.Probabilities {
			if math.Float64bits(got.Probabilities[i]) != math.Float64bits(want.Probabilities[i]) {
				t.Fatalf("workers=%d: p[%d] = %v, want %v",
					w, i, got.Probabilities[i], want.Probabilities[i])
			}
		}
		if !reflect.DeepEqual(got.Matches, want.Matches) {
			t.Fatalf("workers=%d: matches diverge from unsharded run", w)
		}
		if !reflect.DeepEqual(got.Clusters, want.Clusters) {
			t.Fatalf("workers=%d: clusters diverge from unsharded run", w)
		}
	}
}

func TestPipelineScoreAlignment(t *testing.T) {
	d := ProductReplica(ReplicaConfig{Seed: 1, Scale: 0.1})
	p := NewPipeline(d, DefaultOptions())
	n := p.NumCandidates()
	if n == 0 {
		t.Fatal("no candidates")
	}
	for name, scores := range map[string][]float64{
		"jaccard": p.Jaccard(),
		"tfidf":   p.TFIDF(),
		"simrank": p.SimRank(),
		"hybrid":  p.Hybrid(0.5),
	} {
		if len(scores) != n {
			t.Errorf("%s returned %d scores, want %d", name, len(scores), n)
		}
	}
	pr, salience := p.PageRank()
	if len(pr) != n || len(salience) != p.NumTerms() {
		t.Errorf("pagerank alignment wrong: %d/%d", len(pr), len(salience))
	}
}

func TestPipelineMethodsOrderingOnProduct(t *testing.T) {
	// The paper's headline shape (Table II, Product column): the fusion
	// framework beats TF-IDF, which beats Jaccard.
	d := ProductReplica(ReplicaConfig{Seed: 1, Scale: 0.25})
	p := NewPipeline(d, DefaultOptions())
	out := p.Fusion()
	fm, ok := p.EvaluateMatches(out.Matched)
	if !ok {
		t.Fatal("evaluation unavailable")
	}
	_, jm, _ := p.EvaluateScores(p.Jaccard())
	_, tm, _ := p.EvaluateScores(p.TFIDF())
	if !(fm.F1 > tm.F1 && tm.F1 > jm.F1) {
		t.Errorf("ordering violated: fusion %.3f, tfidf %.3f, jaccard %.3f", fm.F1, tm.F1, jm.F1)
	}
}

func TestPipelineTermWeightQuality(t *testing.T) {
	// Table IV shape: ITER's weights correlate with the score(t) oracle far
	// better than PageRank salience.
	d := ProductReplica(ReplicaConfig{Seed: 1, Scale: 0.2})
	p := NewPipeline(d, DefaultOptions())
	out := p.Fusion()
	iterRho, ok := p.TermWeightQuality(out.TermWeights)
	if !ok {
		t.Fatal("no ground truth")
	}
	_, salience := p.PageRank()
	prRho, _ := p.TermWeightQuality(salience)
	if iterRho <= prRho {
		t.Errorf("ITER rho %.3f must exceed PageRank rho %.3f", iterRho, prRho)
	}
	// At this reduced scale most surviving candidate pairs are matches, so
	// the score(t) oracle is tie-heavy and rho is depressed; the ordering
	// against PageRank above is the substantive Table IV property, and the
	// full-scale values are reported by cmd/erbench.
	if iterRho < 0.25 {
		t.Errorf("ITER rho %.3f unexpectedly low", iterRho)
	}
}

func TestPipelineTermScoreSeries(t *testing.T) {
	d := RestaurantReplica(ReplicaConfig{Seed: 1, Scale: 0.2})
	p := NewPipeline(d, DefaultOptions())
	out := p.Fusion()
	series, ok := p.TermScoreSeries(out.TermWeights)
	if !ok || len(series) == 0 {
		t.Fatal("no series")
	}
	// Figure 4 shape: the front decile of the ranking should carry a higher
	// mean score(t) than the back decile.
	k := len(series) / 10
	if k == 0 {
		k = 1
	}
	var front, back float64
	for i := 0; i < k; i++ {
		front += series[i]
		back += series[len(series)-1-i]
	}
	if front <= back {
		t.Errorf("front decile %f not above back decile %f", front/float64(k), back/float64(k))
	}
}

func TestOptionsUniversalAcrossBackends(t *testing.T) {
	// The RSS backend must agree with CliqueRank on a small replica.
	d := RestaurantReplica(ReplicaConfig{Seed: 1, Scale: 0.15})
	cr := NewPipeline(d, DefaultOptions())
	crOut := cr.Fusion()
	crM, _ := cr.EvaluateMatches(crOut.Matched)

	opts := DefaultOptions()
	opts.UseRSS = true
	opts.RSSWalks = 50
	rs := NewPipeline(d, opts)
	rsOut := rs.Fusion()
	rsM, _ := rs.EvaluateMatches(rsOut.Matched)

	if diff := crM.F1 - rsM.F1; diff > 0.25 || diff < -0.25 {
		t.Errorf("backends diverge: CliqueRank %.3f vs RSS %.3f", crM.F1, rsM.F1)
	}
}

func TestProgressCallbackThroughPublicAPI(t *testing.T) {
	d := RestaurantReplica(ReplicaConfig{Seed: 1, Scale: 0.1})
	opts := DefaultOptions()
	opts.FusionIterations = 3
	var iters []int
	opts.Progress = func(it int, s, p []float64, elapsed time.Duration) {
		iters = append(iters, it)
		if len(s) != len(p) {
			t.Error("misaligned callback slices")
		}
	}
	NewPipeline(d, opts).Fusion()
	if len(iters) != 3 || iters[2] != 3 {
		t.Errorf("progress iterations = %v, want [1 2 3]", iters)
	}
}

func TestPipelineExtendedScorers(t *testing.T) {
	d := RestaurantReplica(ReplicaConfig{Seed: 1, Scale: 0.2})
	p := NewPipeline(d, DefaultOptions())
	soft := p.SoftTFIDF()
	me := p.MongeElkan()
	if len(soft) != p.NumCandidates() || len(me) != p.NumCandidates() {
		t.Fatal("extended scorers misaligned")
	}
	// Both must be usable with the threshold-sweep evaluator and do a
	// reasonable job on the replica.
	if _, m, ok := p.EvaluateScores(soft); !ok || m.F1 < 0.5 {
		t.Errorf("SoftTFIDF F1 = %.3f, want > 0.5", m.F1)
	}
	if _, m, ok := p.EvaluateScores(me); !ok || m.F1 < 0.5 {
		t.Errorf("MongeElkan F1 = %.3f, want > 0.5", m.F1)
	}
}

func TestL2NormalizationOption(t *testing.T) {
	d := RestaurantReplica(ReplicaConfig{Seed: 1, Scale: 0.15})
	opts := DefaultOptions()
	opts.L2Normalization = true
	p := NewPipeline(d, opts)
	out := p.Fusion()
	var norm float64
	for _, x := range out.TermWeights {
		norm += x * x
	}
	if norm <= 0.5 || norm > 1.5 {
		t.Errorf("L2-normalized weights have squared norm %g, want ~1", norm)
	}
	if m, ok := p.EvaluateMatches(out.Matched); !ok || m.F1 < 0.5 {
		t.Errorf("L2 variant F1 = %.3f, want a working pipeline", m.F1)
	}
}

func TestBlockingRecall(t *testing.T) {
	d := ProductReplica(ReplicaConfig{Seed: 1, Scale: 0.2})
	p := NewPipeline(d, DefaultOptions())
	recall, ok := p.BlockingRecall()
	if !ok {
		t.Fatal("labeled replica must report blocking recall")
	}
	if recall <= 0.7 || recall > 1 {
		t.Errorf("blocking recall = %.3f, want in (0.7, 1]", recall)
	}
	// Blocking recall bounds every method's recall.
	out := p.Fusion()
	if m, evalOK := p.EvaluateMatches(out.Matched); evalOK && m.Recall > recall+1e-9 {
		t.Errorf("fusion recall %.3f exceeds blocking ceiling %.3f", m.Recall, recall)
	}
	unlabeled := NewDataset("x", []Record{{Text: "aa bb"}, {Text: "aa bb"}})
	if _, ok := NewPipeline(unlabeled, DefaultOptions()).BlockingRecall(); ok {
		t.Error("unlabeled dataset must not report blocking recall")
	}
}

func TestTopTerms(t *testing.T) {
	d := ProductReplica(ReplicaConfig{Seed: 1, Scale: 0.15})
	p := NewPipeline(d, DefaultOptions())
	out := p.Fusion()
	top := p.TopTerms(out.TermWeights, 5)
	if len(top) != 5 {
		t.Fatalf("TopTerms returned %d entries", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Weight > top[i-1].Weight {
			t.Error("TopTerms not sorted descending")
		}
	}
	all := p.TopTerms(out.TermWeights, 0)
	if len(all) < len(top) {
		t.Error("k=0 must return all weighted terms")
	}
}

func TestResolveDegenerateInputs(t *testing.T) {
	// A single record: no candidates, no matches, one singleton cluster.
	one := NewDataset("one", []Record{{Text: "hello world"}})
	res, err := Resolve(one, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 || len(res.Clusters) != 1 {
		t.Errorf("unexpected result on single record: %+v", res)
	}

	// Records sharing nothing: empty candidate set end to end.
	disjoint := NewDataset("disjoint", []Record{
		{Text: "alpha beta"},
		{Text: "gamma delta"},
		{Text: "epsilon zeta"},
	})
	res, err = Resolve(disjoint, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Errorf("disjoint records produced matches: %+v", res.Matches)
	}
	if len(res.Clusters) != 3 {
		t.Errorf("clusters = %v, want 3 singletons", res.Clusters)
	}
}

func TestEvaluateClustersBCubed(t *testing.T) {
	d := RestaurantReplica(ReplicaConfig{Seed: 1, Scale: 0.2})
	p := NewPipeline(d, DefaultOptions())
	out := p.Fusion()
	clusters := p.Clusters(out.Matched)
	m, ok := p.EvaluateClusters(clusters)
	if !ok {
		t.Fatal("labeled replica must evaluate clusters")
	}
	if m.F1 < 0.5 || m.F1 > 1 {
		t.Errorf("B-cubed F1 = %.3f out of expected range", m.F1)
	}
	// Perfect clustering from ground truth must score 1.
	gold := map[int][]int{}
	for i, r := range d.internal().Records {
		gold[r.EntityID] = append(gold[r.EntityID], i)
	}
	var perfect [][]int
	for _, g := range gold {
		perfect = append(perfect, g)
	}
	if m, _ := p.EvaluateClusters(perfect); m.F1 != 1 {
		t.Errorf("gold clustering B-cubed F1 = %.3f, want 1", m.F1)
	}
}

func TestPipelinePRCurveAndBiRank(t *testing.T) {
	d := ProductReplica(ReplicaConfig{Seed: 1, Scale: 0.15})
	p := NewPipeline(d, DefaultOptions())
	scores, salience := p.BiRank()
	if len(scores) != p.NumCandidates() || len(salience) != p.NumTerms() {
		t.Fatal("BiRank alignment wrong")
	}
	curve, ok := p.PRCurve(scores)
	if !ok || len(curve) == 0 {
		t.Fatal("PR curve unavailable")
	}
	best := 0.0
	for _, pt := range curve {
		if pt.F1 > best {
			best = pt.F1
		}
	}
	// The curve's best point must agree with EvaluateScores up to sweep
	// quantization.
	_, m, _ := p.EvaluateScores(scores)
	if best < m.F1-0.02 {
		t.Errorf("curve best F1 %.3f below sweep %.3f", best, m.F1)
	}
}

func TestExplain(t *testing.T) {
	records := []Record{
		{Text: "sony turntable pslx350h audio deck"},
		{Text: "sony pslx350h turntable dust audio"},
		{Text: "pioneer receiver vsx321 audio amp"},
		{Text: "pioneer vsx321 receiver audio black"},
	}
	d := NewDataset("catalog", records)
	p := NewPipeline(d, DefaultOptions())
	out := p.Fusion()

	ex, ok := p.Explain(out, 0, 1)
	if !ok {
		t.Fatal("candidate pair must be explainable")
	}
	if ex.Probability < 0.9 {
		t.Errorf("duplicate pair probability = %g", ex.Probability)
	}
	if len(ex.SharedTerms) < 3 {
		t.Fatalf("shared terms = %v", ex.SharedTerms)
	}
	// The model code must rank above the corpus-wide "audio".
	rank := map[string]int{}
	for i, tw := range ex.SharedTerms {
		rank[tw.Term] = i
	}
	if rank["pslx350h"] > rank["audio"] {
		t.Errorf("model code ranked below stop word: %v", ex.SharedTerms)
	}
	if _, ok := p.Explain(out, 0, 3); ok {
		t.Error("non-candidate pair must not be explainable")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("defaults must validate: %v", err)
	}
	bad := []func(*Options){
		func(o *Options) { o.Alpha = 0 },
		func(o *Options) { o.Steps = 0 },
		func(o *Options) { o.Eta = 1.5 },
		func(o *Options) { o.FusionIterations = 0 },
		func(o *Options) { o.MaxDFRatio = -0.1 },
		func(o *Options) { o.MinJaccard = 2 },
		func(o *Options) { o.UseRSS = true; o.RSSWalks = 1 },
	}
	for i, corrupt := range bad {
		o := DefaultOptions()
		corrupt(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: invalid options passed validation", i)
		}
	}
}

func TestResolveConcurrentUse(t *testing.T) {
	// The library must be safe for concurrent resolution of independent
	// datasets (each pipeline owns its state; shared inputs are read-only).
	d := RestaurantReplica(ReplicaConfig{Seed: 1, Scale: 0.1})
	const workers = 4
	results := make([]float64, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			res, err := Resolve(d, DefaultOptions())
			if err == nil && res.Evaluation != nil {
				results[w] = res.Evaluation.F1
			}
			done <- w
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatalf("concurrent runs diverged: %v", results)
		}
	}
}

func TestOptionsStopwords(t *testing.T) {
	d := NewDataset("x", []Record{
		{Text: "acme corp turbo x100"},
		{Text: "acme corp turbo x100 deluxe"},
	})
	opts := DefaultOptions()
	opts.Stopwords = []string{"corp"}
	p := NewPipeline(d, opts)
	for i := 0; i < p.NumTerms(); i++ {
		if p.Term(i) == "corp" {
			t.Error("stopword survived preprocessing")
		}
	}
}
