package er

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
)

// TestRecoverToError pins the panic boundary: a panic inside a guarded
// function becomes an error wrapping ErrInternal, and a clean return is
// left untouched.
func TestRecoverToError(t *testing.T) {
	boom := func() (err error) {
		defer recoverToError(&err)
		panic("invariant violated")
	}
	err := boom()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("panic produced %v, want error wrapping ErrInternal", err)
	}

	clean := func() (err error) {
		defer recoverToError(&err)
		return nil
	}
	if err := clean(); err != nil {
		t.Fatalf("clean path produced %v", err)
	}
}

// TestHTTPStatus pins the taxonomy-to-status table, including the wrapped
// forms the pipeline actually produces (a budget error wraps both
// ErrBudgetExceeded and context.DeadlineExceeded and must rank as 504, not
// fall through on whichever sentinel is tested first).
func TestHTTPStatus(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, http.StatusOK},
		{ErrInvalidOptions, http.StatusBadRequest},
		{fmt.Errorf("%w: Eta out of range", ErrInvalidOptions), http.StatusBadRequest},
		{ErrBadData, http.StatusBadRequest},
		{ErrNoRecords, http.StatusBadRequest},
		{ErrNoCandidates, http.StatusUnprocessableEntity},
		{ErrBudgetExceeded, http.StatusGatewayTimeout},
		{fmt.Errorf("er: wall-clock budget exhausted: %w; %w", ErrBudgetExceeded, context.DeadlineExceeded), http.StatusGatewayTimeout},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, StatusClientClosedRequest},
		{fmt.Errorf("er: resolution aborted: %w", context.Canceled), StatusClientClosedRequest},
		{ErrInternal, http.StatusInternalServerError},
		{errors.New("unclassified"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := HTTPStatus(tc.err); got != tc.want {
			t.Errorf("HTTPStatus(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
