package er

import (
	"errors"
	"testing"
)

// TestRecoverToError pins the panic boundary: a panic inside a guarded
// function becomes an error wrapping ErrInternal, and a clean return is
// left untouched.
func TestRecoverToError(t *testing.T) {
	boom := func() (err error) {
		defer recoverToError(&err)
		panic("invariant violated")
	}
	err := boom()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("panic produced %v, want error wrapping ErrInternal", err)
	}

	clean := func() (err error) {
		defer recoverToError(&err)
		return nil
	}
	if err := clean(); err != nil {
		t.Fatalf("clean path produced %v", err)
	}
}
