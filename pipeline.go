package er

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/baselines"
	"repro/internal/blocking"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/similarity"
	"repro/internal/textproc"
)

// Pipeline holds the tokenized corpus and candidate-pair structures for one
// dataset and exposes every scoring method of the paper's evaluation. All
// score slices returned by its methods are aligned: index k refers to
// candidate pair k.
type Pipeline struct {
	dataset     *Dataset
	opts        Options
	snap        *engine.Snapshot
	corpus      *textproc.Corpus
	graph       *blocking.Graph
	truth       map[uint64]bool
	degradation *DegradationReport
	buildTrace  engine.Trace
}

// DegradationReport describes how the pipeline degraded candidate
// generation to satisfy Options.MaxCandidatePairs. Degradation is lossy by
// design — tightened filters and truncation can drop true matches — so
// every step is recorded for the caller to audit.
type DegradationReport struct {
	// OriginalPairs is the candidate count of the untightened blocking pass
	// that exceeded the budget.
	OriginalPairs int
	// FinalPairs is the candidate count actually handed downstream.
	FinalPairs int
	// MinJaccard and MaxTermRecords are the effective blocking parameters
	// of the final pass (tighter than the configured ones).
	MinJaccard     float64
	MaxTermRecords int
	// TruncatedPairs counts pairs dropped by the deterministic last-resort
	// truncation after parameter tightening alone could not reach the
	// budget; 0 when tightening sufficed.
	TruncatedPairs int
	// Steps narrates each degradation step in order, for logs and CLIs.
	Steps []string
}

// NewPipeline tokenizes the dataset, applies the frequent-term filter and
// generates candidate pairs (cross-source only for multi-source data).
// Invalid options are normalized to their defaults field by field; callers
// that want invalid configurations rejected (and cancellation, and real
// errors) should use NewPipelineContext instead.
func NewPipeline(d *Dataset, opts Options) *Pipeline {
	p, err := buildPipeline(context.Background(), d, opts.normalized())
	if err != nil {
		// Unreachable: every construction path — including the degradation
		// rebuilds — flows through the engine's single error return, whose
		// only failure modes are cancellation (impossible on a background
		// context) and source/record misalignment (impossible by er.Dataset
		// construction). Kept as a panic so a future regression fails
		// loudly in tests rather than silently.
		//lint:invariant background-context engine build cannot fail; a panic here is a regression tests must catch
		panic(err)
	}
	return p
}

// NewPipelineContext is the context-aware, error-returning constructor:
// it rejects invalid options (ErrInvalidOptions) and empty datasets
// (ErrNoRecords), honors ctx cancellation and the MaxWallClock budget
// during candidate generation, and applies the MaxCandidatePairs budget
// with graceful degradation (see DegradationReport).
func NewPipelineContext(ctx context.Context, d *Dataset, opts Options) (p *Pipeline, err error) {
	defer recoverToError(&err)
	if err := opts.Validate(); err != nil {
		return nil, err // Validate's errors wrap ErrInvalidOptions
	}
	if d == nil || d.NumRecords() == 0 {
		return nil, ErrNoRecords
	}
	ctx, cancel := opts.withWallClock(ctx)
	defer cancel()
	return buildPipeline(ctx, d, opts)
}

// withWallClock derives the MaxWallClock budget context (a no-op cancel
// when the budget is disabled). The budget's expiry is distinguishable
// from a caller deadline via context.Cause, which carries
// ErrBudgetExceeded.
func (o Options) withWallClock(ctx context.Context) (context.Context, context.CancelFunc) {
	if o.MaxWallClock > 0 {
		return context.WithTimeoutCause(ctx, o.MaxWallClock, ErrBudgetExceeded)
	}
	return ctx, func() {}
}

// buildPipeline is the shared constructor body. ctx must already carry any
// wall-clock budget; opts must already be validated or normalized.
func buildPipeline(ctx context.Context, d *Dataset, opts Options) (*Pipeline, error) {
	run := engine.NewRun(ctx, engine.RunOptions{Workers: opts.Workers})
	return buildPipelineRun(run, ctx, d, opts)
}

// buildPipelineRun executes the pre-matching stages (tokenize, block with
// the MaxCandidatePairs degradation) on an existing engine run, so
// ResolveContext threads one run — and one trace — through construction,
// fusion, clustering and evaluation.
func buildPipelineRun(run *engine.Run, ctx context.Context, d *Dataset, opts Options) (*Pipeline, error) {
	snap, err := engine.Prepare(run, engine.PrepareInputs{
		Texts:   d.ds.Texts(),
		Sources: d.ds.Sources(),
		Corpus:  opts.corpusOptions(),
		Blocking: blocking.Options{
			CrossSourceOnly: d.ds.NumSources > 1,
			MaxTermRecords:  opts.MaxTermRecords,
			MinSharedTerms:  opts.MinSharedTerms,
			MinJaccard:      opts.MinJaccard,
		},
		MaxPairs: opts.MaxCandidatePairs,
		Cache:    opts.Snapshots.engineCache(),
	})
	if err != nil {
		// Cancellation observed by the engine (directly or through a
		// failed blocking pass) maps to the run taxonomy; anything else is
		// an internal invariant violation.
		if ctxErr := run.Check().Err(); ctxErr != nil {
			return nil, wrapRunErr(ctx, ctxErr)
		}
		return nil, fmt.Errorf("%w: %v", ErrInternal, err)
	}
	p := &Pipeline{
		dataset:     d,
		opts:        opts,
		snap:        snap,
		corpus:      snap.Corpus,
		graph:       snap.Graph,
		degradation: degradationReport(snap.Degradation),
		buildTrace:  run.Trace(),
	}
	if d.HasGroundTruth() {
		p.truth = d.ds.TrueMatches()
	}
	return p, nil
}

// degradationReport converts the engine's degradation record into the
// public report type.
func degradationReport(d *engine.Degradation) *DegradationReport {
	if d == nil {
		return nil
	}
	return &DegradationReport{
		OriginalPairs:  d.OriginalPairs,
		FinalPairs:     d.FinalPairs,
		MinJaccard:     d.MinJaccard,
		MaxTermRecords: d.MaxTermRecords,
		TruncatedPairs: d.TruncatedPairs,
		Steps:          d.Steps,
	}
}

// Degradation returns the report of the MaxCandidatePairs budget
// degradation, or nil when the budget was disabled or never exceeded.
func (p *Pipeline) Degradation() *DegradationReport { return p.degradation }

// Trace returns the stage trace of the pipeline's construction: the
// tokenize and block stages with their wall times and sizes, flagged
// Cached when Options.Snapshots served them from a previous run.
func (p *Pipeline) Trace() Trace { return fromEngineTrace(p.buildTrace) }

// SnapshotKey returns the content key of the pipeline's pre-matching
// snapshot — a hash over the record texts, source labels, and every
// option that influences tokenization or blocking. Pipelines with equal
// keys share identical corpora and candidate graphs, which is the
// identity Options.Snapshots caches under.
func (p *Pipeline) SnapshotKey() string { return p.snap.Key }

// CheckCandidates reports whether the pipeline has any work to do:
// ErrNoRecords for an empty dataset, ErrNoCandidates when no two records
// share a term (so nothing can ever match), nil otherwise. An empty
// candidate set is a valid input to every scoring method — this check
// exists for callers that want to surface the condition instead.
func (p *Pipeline) CheckCandidates() error {
	if p.dataset.NumRecords() == 0 {
		return ErrNoRecords
	}
	if p.graph.NumPairs() == 0 {
		return ErrNoCandidates
	}
	return nil
}

// wrapRunErr translates a cancellation observed by the internal layers into
// the library taxonomy: expiry of the MaxWallClock budget (identified via
// the context cause) wraps ErrBudgetExceeded alongside
// context.DeadlineExceeded; everything else wraps the context's own error
// (context.Canceled or context.DeadlineExceeded from the caller's context).
func wrapRunErr(ctx context.Context, err error) error {
	if cause := context.Cause(ctx); errors.Is(cause, ErrBudgetExceeded) {
		return fmt.Errorf("er: wall-clock budget exhausted: %w; %w", ErrBudgetExceeded, context.DeadlineExceeded)
	}
	return fmt.Errorf("er: resolution aborted: %w", err)
}

// NumCandidates returns the number of candidate pairs.
func (p *Pipeline) NumCandidates() int { return p.graph.NumPairs() }

// CandidatePair returns the record indexes of candidate pair k.
func (p *Pipeline) CandidatePair(k int) (int, int) {
	pair := p.graph.Pairs[k]
	return int(pair.I), int(pair.J)
}

// NumTerms returns the number of terms that survived pre-processing.
func (p *Pipeline) NumTerms() int { return p.corpus.NumTerms() }

// Term returns the surface form of term t.
func (p *Pipeline) Term(t int) string { return p.corpus.Terms[t] }

// Jaccard scores candidate pairs with token-set Jaccard similarity.
func (p *Pipeline) Jaccard() []float64 { return similarity.Jaccard(p.corpus, p.graph) }

// TFIDF scores candidate pairs with TF-IDF cosine similarity.
func (p *Pipeline) TFIDF() []float64 { return similarity.TFIDFCosine(p.corpus, p.graph) }

// SoftTFIDF scores candidate pairs with the Soft TF-IDF hybrid metric of
// Cohen et al. (token TF-IDF with Jaro-Winkler near-matching), an
// additional member of the §II-A distance family offered by the library.
func (p *Pipeline) SoftTFIDF() []float64 { return similarity.SoftTFIDFScores(p.corpus, p.graph) }

// MongeElkan scores candidate pairs with the symmetrized Monge-Elkan field
// match over surface tokens (Jaro-Winkler inner metric).
func (p *Pipeline) MongeElkan() []float64 { return similarity.MongeElkanScores(p.corpus, p.graph) }

// BiRank scores candidate pairs with TW-IDF weighting driven by BiRank
// term salience on the record-term bipartite graph (He et al., the paper's
// ref [28]) and also returns the salience vector.
func (p *Pipeline) BiRank() (scores, salience []float64) {
	return baselines.BiRankTWIDF(p.corpus, p.graph, baselines.DefaultBiRankOptions())
}

// SimRank scores candidate pairs with bipartite SimRank (Eq. 1-2).
func (p *Pipeline) SimRank() []float64 {
	return baselines.SimRank(p.corpus, p.graph, baselines.DefaultSimRankOptions())
}

// PageRank scores candidate pairs with the PageRank/TW-IDF baseline (Eq.
// 3-4) and also returns the PageRank term salience.
func (p *Pipeline) PageRank() (scores, salience []float64) {
	return baselines.PageRankTWIDF(p.corpus, p.graph, baselines.DefaultPageRankOptions())
}

// Hybrid scores candidate pairs with the β-weighted combination of SimRank
// and PageRank/TW-IDF (Eq. 5).
func (p *Pipeline) Hybrid(beta float64) []float64 {
	sb := p.SimRank()
	su, _ := p.PageRank()
	// Both inputs come from the same candidate graph, so the misalignment
	// error baselines.Hybrid guards against cannot occur here.
	out, err := baselines.Hybrid(sb, su, beta)
	if err != nil {
		//lint:invariant both score slices are aligned with p.graph.Pairs by construction
		panic(err)
	}
	return out
}

// FusionOutcome is the result of the full ITER+CliqueRank framework.
type FusionOutcome struct {
	// TermWeights is the learned discrimination power x_t per term.
	TermWeights []float64
	// Similarities is the learned pair similarity s per candidate pair.
	Similarities []float64
	// Probabilities is the matching probability p per candidate pair.
	Probabilities []float64
	// Matched flags candidate pairs with p >= η.
	Matched []bool
	// GraphNodes and GraphEdges are the Table III record-graph statistics.
	GraphNodes, GraphEdges int
	// ITERUpdateTrace concatenates the Σ|Δx_t| per inner ITER iteration
	// across fusion rounds (the Figure 5 series).
	ITERUpdateTrace [][]float64
	// Converged reports whether every inner ITER loop reached its update
	// tolerance before hitting the iteration cap; ITERIterations holds the
	// inner iteration count of each fusion round.
	Converged      bool
	ITERIterations []int
	// NumericRepairs counts non-finite or out-of-range values (NaN, ±Inf,
	// negative weights, probabilities outside [0,1]) that the numeric
	// guardrails replaced with their documented fallbacks; 0 on a healthy
	// run.
	NumericRepairs int
	// Trace records the fusion stages (iter, recordgraph, cliquerank/rss,
	// fuse) with per-stage wall times, sizes and iteration counts.
	Trace Trace
	// Elapsed is the wall-clock time of the fusion loop.
	Elapsed time.Duration
}

// Fusion runs the full unsupervised framework. This error-free legacy
// entry point runs unbounded — it has no channel to report an exhausted
// budget — so MaxWallClock is ignored here; use FusionContext for bounded
// runs.
func (p *Pipeline) Fusion() *FusionOutcome {
	q := *p
	q.opts.MaxWallClock = 0
	// A background context without a budget cannot cancel, which is the
	// only error path of FusionContext, so the error is unreachable here.
	out, err := q.FusionContext(context.Background())
	if err != nil {
		//lint:invariant a budget-free background context cannot cancel, FusionContext's only error path
		panic(err)
	}
	return out
}

// FusionContext runs the full unsupervised framework under ctx: the fusion
// loop polls for cancellation and returns an error wrapping the context's
// error (and ErrBudgetExceeded, if the MaxWallClock budget's deadline is
// the cause) instead of completing. MaxWallClock is applied here too, so
// staged callers (NewPipelineContext then FusionContext) get each stage
// bounded by the budget; under ResolveContext the outer whole-run timer
// still governs, because a derived context can never outlive its parent.
func (p *Pipeline) FusionContext(ctx context.Context) (*FusionOutcome, error) {
	ctx, cancel := p.opts.withWallClock(ctx)
	defer cancel()
	run := engine.NewRun(ctx, engine.RunOptions{Workers: p.opts.Workers})
	return p.fuseRun(ctx, run)
}

// fuseRun executes the fusion stages on an existing engine run; the
// outcome's Trace carries only the stages this call recorded, so a shared
// run (ResolveContext) keeps its earlier stages separate.
func (p *Pipeline) fuseRun(ctx context.Context, run *engine.Run) (*FusionOutcome, error) {
	before := run.Stages()
	res, err := engine.Fuse(run, p.graph, p.dataset.NumRecords(), p.opts.coreOptions())
	if err != nil {
		return nil, wrapRunErr(ctx, err)
	}
	return &FusionOutcome{
		TermWeights:     res.X,
		Similarities:    res.S,
		Probabilities:   res.P,
		Matched:         res.Matches,
		GraphNodes:      res.Nodes,
		GraphEdges:      res.Edges,
		ITERUpdateTrace: res.ITERTrace,
		Converged:       res.Converged,
		ITERIterations:  res.ITERIterations,
		NumericRepairs:  res.NumericRepairs,
		Trace:           fromEngineTrace(run.Trace()[before:]),
		Elapsed:         res.Elapsed,
	}, nil
}

// Metrics is a pairwise precision/recall/F1 evaluation result.
type Metrics struct {
	Precision, Recall, F1 float64
	TP, FP, FN            int
}

func fromPRF(r eval.PRF) Metrics {
	return Metrics{Precision: r.Precision, Recall: r.Recall, F1: r.F1, TP: r.TP, FP: r.FP, FN: r.FN}
}

// EvaluateMatches scores a boolean match assignment against ground truth.
// It returns false when the dataset has no ground truth.
func (p *Pipeline) EvaluateMatches(matched []bool) (Metrics, bool) {
	if p.truth == nil {
		return Metrics{}, false
	}
	return fromPRF(eval.EvaluatePairs(p.graph.Pairs, matched, p.truth, len(p.truth))), true
}

// EvaluateScores applies the paper's automatic threshold protocol: quantize
// [0, max] into 1000 values and return the threshold with the best F1.
func (p *Pipeline) EvaluateScores(scores []float64) (threshold float64, m Metrics, ok bool) {
	if p.truth == nil {
		return 0, Metrics{}, false
	}
	th, r := eval.BestThreshold(p.graph.Pairs, scores, p.truth, len(p.truth), 1000)
	return th, fromPRF(r), true
}

// EvaluateClusters scores a clustering with B-cubed precision/recall/F1,
// the per-record cluster metric that complements the paper's pairwise F1 on
// skewed cluster-size distributions. It returns false without ground truth.
func (p *Pipeline) EvaluateClusters(clusters [][]int) (Metrics, bool) {
	if p.truth == nil {
		return Metrics{}, false
	}
	gold := make([]int, p.dataset.NumRecords())
	for i := range gold {
		gold[i] = p.dataset.ds.Records[i].EntityID
	}
	return fromPRF(eval.BCubed(clusters, gold)), true
}

// PRPoint is one precision/recall operating point of a score-based matcher.
type PRPoint struct {
	Threshold             float64
	Precision, Recall, F1 float64
}

// PRCurve computes the precision-recall curve of a pair scoring, one point
// per distinct score, thresholds descending. It returns false when the
// dataset has no ground truth.
func (p *Pipeline) PRCurve(scores []float64) ([]PRPoint, bool) {
	if p.truth == nil {
		return nil, false
	}
	raw := eval.PRCurve(p.graph.Pairs, scores, p.truth, len(p.truth))
	out := make([]PRPoint, len(raw))
	for i, pt := range raw {
		out[i] = PRPoint{Threshold: pt.Threshold, Precision: pt.Precision, Recall: pt.Recall, F1: pt.F1}
	}
	return out, true
}

// TermWeightQuality computes the Table IV diagnostic: Spearman's rank
// correlation between a term-weight vector and the score(t) oracle over
// terms connected to at least one candidate pair.
func (p *Pipeline) TermWeightQuality(weights []float64) (float64, bool) {
	if p.truth == nil {
		return 0, false
	}
	oracle := eval.TermScores(p.graph, p.truth)
	var w, o []float64
	for t, s := range oracle {
		if s < 0 {
			continue
		}
		w = append(w, weights[t])
		o = append(o, s)
	}
	rho, err := eval.Spearman(w, o)
	if err != nil {
		// Unreachable: w and o are appended pairwise above, so the only
		// Spearman error (length mismatch) cannot occur. Reported as
		// "no oracle" rather than crashing.
		return 0, false
	}
	return rho, true
}

// TermScoreSeries returns the Figure 4 series for a weight vector: score(t)
// of terms ordered by descending weight.
func (p *Pipeline) TermScoreSeries(weights []float64) ([]float64, bool) {
	if p.truth == nil {
		return nil, false
	}
	oracle := eval.TermScores(p.graph, p.truth)
	return eval.RankSeries(weights, oracle), true
}

// BlockingRecall returns the fraction of ground-truth matching pairs that
// survived candidate generation — the recall ceiling of every downstream
// method. It returns false when the dataset has no ground truth.
func (p *Pipeline) BlockingRecall() (float64, bool) {
	if p.truth == nil {
		return 0, false
	}
	if len(p.truth) == 0 {
		return 1, true
	}
	hit := 0
	for key := range p.truth {
		if _, ok := p.graph.Index[key]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(p.truth)), true
}

// TermWeight pairs a term's surface form with its learned weight.
type TermWeight struct {
	Term   string
	Weight float64
}

// TopTerms returns the k highest-weighted terms of a weight vector,
// descending — the library's window into what ITER decided is
// discriminative (model codes, phone numbers, rare title words).
func (p *Pipeline) TopTerms(weights []float64, k int) []TermWeight {
	out := make([]TermWeight, 0, p.corpus.NumTerms())
	for t, w := range weights {
		if w > 0 {
			out = append(out, TermWeight{Term: p.corpus.Terms[t], Weight: w})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Term < out[j].Term
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Clusters groups records into entities by transitive closure over the
// matched pairs.
func (p *Pipeline) Clusters(matched []bool) [][]int {
	return cluster.FromMatches(p.dataset.NumRecords(), p.graph.Pairs, matched)
}

// Explanation breaks down why a candidate pair scored the way it did.
type Explanation struct {
	// I, J are the record indexes.
	I, J int
	// Similarity is the fused similarity s(ri, rj).
	Similarity float64
	// Probability is the CliqueRank matching probability p(ri, rj).
	Probability float64
	// SharedTerms lists the terms the records share with their learned
	// weights, heaviest first — the evidence the decision rests on.
	SharedTerms []TermWeight
}

// Explain reports the evidence behind one candidate pair's outcome. It
// returns false when (i, j) is not a candidate pair (records sharing
// nothing can never match).
func (p *Pipeline) Explain(out *FusionOutcome, i, j int) (Explanation, bool) {
	id, ok := p.graph.PairID(int32(i), int32(j))
	if !ok {
		return Explanation{}, false
	}
	ex := Explanation{
		I: i, J: j,
		Similarity:  out.Similarities[id],
		Probability: out.Probabilities[id],
	}
	for _, t := range textproc.IntersectSorted(p.corpus.Docs[i], p.corpus.Docs[j]) {
		ex.SharedTerms = append(ex.SharedTerms, TermWeight{
			Term:   p.corpus.Terms[t],
			Weight: out.TermWeights[t],
		})
	}
	sort.Slice(ex.SharedTerms, func(a, b int) bool {
		if ex.SharedTerms[a].Weight != ex.SharedTerms[b].Weight {
			return ex.SharedTerms[a].Weight > ex.SharedTerms[b].Weight
		}
		return ex.SharedTerms[a].Term < ex.SharedTerms[b].Term
	})
	return ex, true
}

// Match is one resolved record pair.
type Match struct {
	I, J        int
	Probability float64
}

// Result is the outcome of Resolve.
type Result struct {
	// Matches lists the record pairs with matching probability >= η,
	// ordered by candidate enumeration.
	Matches []Match
	// Clusters groups record indexes per resolved entity (size-descending;
	// unmatched records appear as singletons).
	Clusters [][]int
	// Probabilities holds p per candidate pair; Pairs identifies them.
	Probabilities []float64
	// Evaluation holds pairwise metrics when the dataset carries ground
	// truth; nil otherwise.
	Evaluation *Metrics
	// GraphNodes/GraphEdges describe the record graph.
	GraphNodes, GraphEdges int
	// Converged reports whether every ITER loop reached its tolerance
	// before its iteration cap.
	Converged bool
	// NumericRepairs counts values repaired by the numeric guardrails
	// (see FusionOutcome.NumericRepairs); 0 on a healthy run.
	NumericRepairs int
	// Degradation reports how candidate generation was degraded to satisfy
	// Options.MaxCandidatePairs; nil when no degradation was needed.
	Degradation *DegradationReport
	// Trace records every pipeline stage of the run in execution order —
	// tokenize, block, the fusion phases, cluster, evaluate — with wall
	// times, sizes and Cached flags (see StageTrace).
	Trace Trace
	// Elapsed is the fusion wall-clock time.
	Elapsed time.Duration
	// IDs maps record positions to external record IDs for results produced
	// by Collection.Resolve (ascending external-ID order); nil for the batch
	// Resolve, whose positions are the dataset's record indexes.
	IDs []string
	// Delta reports the delta-scoped resolver's work split — components and
	// pairs re-fused versus served from the component cache — for results
	// produced by Collection.Resolve; nil for the batch Resolve.
	Delta *DeltaStats
}

// Resolve runs the full unsupervised pipeline on a dataset: tokenize, block,
// iterate ITER ⇄ CliqueRank, threshold at η and cluster. It is
// ResolveContext with a background context.
func Resolve(d *Dataset, opts Options) (*Result, error) {
	return ResolveContext(context.Background(), d, opts)
}

// ResolveContext is Resolve under a context: cancellation and deadlines are
// polled from every hot loop (blocking enumeration, ITER sweeps, CliqueRank
// power iterations, RSS sampling), so a canceled context aborts the run
// promptly with an error wrapping context.Canceled or
// context.DeadlineExceeded. The Options budgets are enforced here:
// MaxWallClock bounds the whole run (its expiry wraps ErrBudgetExceeded and
// context.DeadlineExceeded), and MaxCandidatePairs degrades candidate
// generation gracefully, reported in Result.Degradation. Internal panics
// are converted into errors wrapping ErrInternal.
func ResolveContext(ctx context.Context, d *Dataset, opts Options) (res *Result, err error) {
	defer recoverToError(&err)
	if err := opts.Validate(); err != nil {
		return nil, err // Validate's errors wrap ErrInvalidOptions
	}
	if d == nil || d.NumRecords() == 0 {
		return nil, ErrNoRecords
	}
	ctx, cancel := opts.withWallClock(ctx)
	defer cancel()
	// One engine run carries the whole resolution, so Result.Trace records
	// every stage — construction through evaluation — in execution order.
	run := engine.NewRun(ctx, engine.RunOptions{Workers: opts.Workers})
	p, err := buildPipelineRun(run, ctx, d, opts)
	if err != nil {
		return nil, err
	}
	out, err := p.fuseRun(ctx, run)
	if err != nil {
		return nil, err
	}
	clusters, err := engine.Cluster(run, d.NumRecords(), p.graph.Pairs, out.Matched)
	if err != nil {
		return nil, wrapRunErr(ctx, err)
	}
	res = &Result{
		Probabilities:  out.Probabilities,
		Clusters:       clusters,
		GraphNodes:     out.GraphNodes,
		GraphEdges:     out.GraphEdges,
		Converged:      out.Converged,
		NumericRepairs: out.NumericRepairs,
		Degradation:    p.degradation,
		Elapsed:        out.Elapsed,
	}
	for k, matched := range out.Matched {
		if !matched {
			continue
		}
		i, j := p.CandidatePair(k)
		res.Matches = append(res.Matches, Match{I: i, J: j, Probability: out.Probabilities[k]})
	}
	if p.truth != nil {
		prf, err := engine.Evaluate(run, p.graph.Pairs, out.Matched, p.truth, len(p.truth))
		if err != nil {
			return nil, wrapRunErr(ctx, err)
		}
		m := fromPRF(prf)
		res.Evaluation = &m
	}
	res.Trace = fromEngineTrace(run.Trace())
	return res, nil
}

// Internals exposes the pipeline's internal corpus and candidate
// structures. The returned types live under internal/ and cannot be named
// by external importers; this accessor was never part of the supported
// API surface.
//
// Deprecated: the staged execution engine supersedes this bridge. Use the
// typed snapshot surface instead — Pipeline.Trace, Pipeline.SnapshotKey,
// FusionOutcome.Trace/Result.Trace for per-stage timing, and (inside this
// module) internal/engine.Prepare/Fuse for stage-level access, as
// internal/experiments now does.
func (p *Pipeline) Internals() (*textproc.Corpus, *blocking.Graph) {
	return p.corpus, p.graph
}

// CoreOptions converts the pipeline's options into the internal core
// parameter set.
//
// Deprecated: a bridge of the same vintage as Internals; superseded by
// the staged execution engine (internal/engine) for in-module harnesses.
func (p *Pipeline) CoreOptions() core.Options { return p.opts.coreOptions() }
