// Package er is an unsupervised entity-resolution library reproducing the
// graph-theoretic fusion framework of Zhang et al. (ICDE 2018): the ITER
// term/record-pair ranking algorithm and the CliqueRank matching-probability
// estimator, iterated until they reinforce each other.
//
// The library needs no labeled data, no crowd assistance and no manually
// tuned similarity threshold: record pairs are declared matches when their
// estimated matching probability exceeds a universal threshold η (0.98 by
// default, used unchanged across domains in the paper).
//
// # Quick start
//
//	records := []er.Record{
//		{Text: "sony turntable pslx350h belt drive"},
//		{Text: "sony pslx350h turntable with dust cover"},
//		{Text: "pioneer receiver vsx321"},
//	}
//	ds := er.NewDataset("catalog", records)
//	res, err := er.Resolve(ds, er.DefaultOptions())
//	// res.Matches lists matched pairs with probabilities;
//	// res.Clusters groups record indexes per entity.
//
// # Pipeline access
//
// Pipeline exposes the intermediate stages — candidate generation, the
// baseline scorers of the paper's evaluation (Jaccard, TF-IDF, bipartite
// SimRank, PageRank/TW-IDF, Hybrid), the learned term weights and the
// threshold-sweep evaluator — which is what the benchmark harness
// (cmd/erbench) and the examples build on.
//
// # Stage traces and snapshot caching
//
// Every resolution executes through a staged engine; Result.Trace and
// Pipeline.Trace report per-stage wall time, input/output sizes, fusion
// round counts and blocking-degradation events. Attaching a
// SnapshotCache via Options.Snapshots lets repeated runs over the same
// records reuse the tokenized corpus and candidate graph — the cache is
// content-keyed, so a hit is byte-identical to a recompute — with reused
// stages marked Cached in the trace.
//
// # Benchmark replicas
//
// RestaurantReplica, ProductReplica and PaperReplica generate synthetic
// stand-ins for the Fodors-Zagat, Abt-Buy and Cora benchmarks with the
// published record counts, match counts and cluster-size distributions
// (see DESIGN.md for the substitution rationale).
package er
