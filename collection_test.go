package er

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// collectionRecord generates a deterministic synthetic record: a handful of
// tokens drawn from a small vocabulary plus an entity-specific token pair,
// so records of the same entity overlap heavily and cross-entity pairs
// still share enough background vocabulary to produce candidate pairs.
func collectionRecord(rng *rand.Rand, entity int) Record {
	text := fmt.Sprintf("entity%d model%d", entity, entity)
	for w := 0; w < 4; w++ {
		text += fmt.Sprintf(" w%d", rng.Intn(30))
	}
	return Record{
		Text:   text,
		Source: rng.Intn(2),
		Entity: fmt.Sprintf("e%d", entity),
	}
}

func collectionOptions(workers int) Options {
	o := DefaultOptions()
	o.MaxDFRatio = 0.5
	o.MinSharedTerms = 2
	o.MinJaccard = 0.1
	o.Workers = workers
	return o
}

func requireResultsEqual(t *testing.T, want, got *Result) {
	t.Helper()
	if len(want.IDs) != len(got.IDs) {
		t.Fatalf("IDs length: want %d, got %d", len(want.IDs), len(got.IDs))
	}
	for i := range want.IDs {
		if want.IDs[i] != got.IDs[i] {
			t.Fatalf("IDs[%d]: want %q, got %q", i, want.IDs[i], got.IDs[i])
		}
	}
	if len(want.Probabilities) != len(got.Probabilities) {
		t.Fatalf("probabilities length: want %d, got %d",
			len(want.Probabilities), len(got.Probabilities))
	}
	for k := range want.Probabilities {
		if math.Float64bits(want.Probabilities[k]) != math.Float64bits(got.Probabilities[k]) {
			t.Fatalf("probability[%d]: want %v, got %v",
				k, want.Probabilities[k], got.Probabilities[k])
		}
	}
	if len(want.Matches) != len(got.Matches) {
		t.Fatalf("matches: want %d, got %d", len(want.Matches), len(got.Matches))
	}
	for k := range want.Matches {
		if want.Matches[k] != got.Matches[k] {
			t.Fatalf("match[%d]: want %+v, got %+v", k, want.Matches[k], got.Matches[k])
		}
	}
	if len(want.Clusters) != len(got.Clusters) {
		t.Fatalf("clusters: want %d, got %d", len(want.Clusters), len(got.Clusters))
	}
	for ci := range want.Clusters {
		if len(want.Clusters[ci]) != len(got.Clusters[ci]) {
			t.Fatalf("cluster[%d] size: want %d, got %d",
				ci, len(want.Clusters[ci]), len(got.Clusters[ci]))
		}
		for k := range want.Clusters[ci] {
			if want.Clusters[ci][k] != got.Clusters[ci][k] {
				t.Fatalf("cluster[%d][%d]: want %d, got %d",
					ci, k, want.Clusters[ci][k], got.Clusters[ci][k])
			}
		}
	}
	if want.Converged != got.Converged {
		t.Fatalf("converged: want %v, got %v", want.Converged, got.Converged)
	}
	if (want.Evaluation == nil) != (got.Evaluation == nil) {
		t.Fatalf("evaluation presence: want %v, got %v",
			want.Evaluation != nil, got.Evaluation != nil)
	}
	if want.Evaluation != nil && *want.Evaluation != *got.Evaluation {
		t.Fatalf("evaluation: want %+v, got %+v", *want.Evaluation, *got.Evaluation)
	}
}

// TestCollectionMatchesFreshResolve is the resolver half of the
// incremental==batch property: after any sequence of upserts and deletes, a
// mutated collection's resolve is bit-identical to resolving a fresh
// collection built from the surviving records only — the warm component
// cache must never change results, only skip work. Runs across worker
// counts; the -race suite exercises the parallel batch materialization.
func TestCollectionMatchesFreshResolve(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			c, err := NewCollection(collectionOptions(workers))
			if err != nil {
				t.Fatal(err)
			}
			live := make(map[string]Record)
			var ids []string
			for step := 0; step < 40; step++ {
				switch {
				case len(live) > 4 && rng.Intn(4) == 0: // delete
					id := ids[rng.Intn(len(ids))]
					if _, existed := c.Delete(id); existed != (func() bool { _, ok := live[id]; return ok })() {
						t.Fatalf("step %d: delete %q existence mismatch", step, id)
					}
					delete(live, id)
				default: // upsert (fresh or replacing)
					id := fmt.Sprintf("r%02d", rng.Intn(30))
					rec := collectionRecord(rng, rng.Intn(8))
					c.Upsert(id, rec)
					if _, ok := live[id]; !ok {
						ids = append(ids, id)
					}
					live[id] = rec
				}
				if step%8 != 7 || len(live) == 0 {
					continue
				}
				got, err := c.Resolve()
				if err != nil {
					t.Fatalf("step %d: incremental resolve: %v", step, err)
				}
				fresh, err := NewCollection(collectionOptions(workers))
				if err != nil {
					t.Fatal(err)
				}
				for id, rec := range live {
					fresh.Upsert(id, rec)
				}
				want, err := fresh.Resolve()
				if err != nil {
					t.Fatalf("step %d: fresh resolve: %v", step, err)
				}
				requireResultsEqual(t, want, got)
				if got.Delta == nil || want.Delta == nil {
					t.Fatalf("step %d: missing delta stats", step)
				}
				if got.Delta.Components != want.Delta.Components {
					t.Fatalf("step %d: components: want %d, got %d",
						step, want.Delta.Components, got.Delta.Components)
				}
			}
		})
	}
}

// TestCollectionDeltaReuse pins the point of the delta path: a resolve
// after one small mutation re-fuses only the touched components and serves
// the rest from the component cache.
func TestCollectionDeltaReuse(t *testing.T) {
	c, err := NewCollection(collectionOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint entities with no shared vocabulary across entities, so each
	// entity is its own candidate-graph component; entity e has e+2 records,
	// so every component is structurally distinct (equal structures would
	// legitimately share one cache entry — the structural dedup the
	// content keys buy — which is not what this test is about).
	const entities = 12
	for e := 0; e < entities; e++ {
		for r := 0; r < e+2; r++ {
			c.Upsert(fmt.Sprintf("e%02d-r%02d", e, r), Record{
				Text:   fmt.Sprintf("alpha%02d beta%02d gamma%02d v%d", e, e, e, r),
				Entity: fmt.Sprintf("e%02d", e),
			})
		}
	}
	first, err := c.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if first.Delta.Components != entities || first.Delta.ComponentsFused != entities {
		t.Fatalf("cold resolve should fuse every component: %+v", *first.Delta)
	}

	// Change entity 0's pair structure (drop one shared term), touching
	// exactly that component.
	d := c.Upsert("e00-r01", Record{
		Text:   "alpha00 beta00 v1",
		Entity: "e00",
	})
	if d.Rebuilt {
		t.Fatalf("single-record upsert should not rebuild the pair table")
	}
	second, err := c.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if second.Delta.ComponentsFused != 1 {
		t.Fatalf("one-component mutation should re-fuse exactly 1 component, got %+v", *second.Delta)
	}
	if second.Delta.ComponentsReused != second.Delta.Components-1 {
		t.Fatalf("unchanged components should be served from cache: %+v", *second.Delta)
	}
	// The trace carries the same split on the deltafuse stage.
	st := second.Trace.Find("deltafuse")
	if st == nil {
		t.Fatal("no deltafuse stage in trace")
	}
	if st.ComponentsFused != 1 || st.ComponentsReused != second.Delta.ComponentsReused {
		t.Fatalf("trace delta split mismatch: %+v vs %+v", *st, *second.Delta)
	}
	// A resolve with no intervening mutation reuses everything.
	third, err := c.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if third.Delta.ComponentsFused != 0 || third.Delta.ComponentsReused != third.Delta.Components {
		t.Fatalf("no-op resolve should reuse every component: %+v", *third.Delta)
	}
	requireResultsEqual(t, second, third)
}

// TestCollectionSharedSnapshotCache verifies that a SnapshotCache handed
// via Options.Snapshots memoizes component results across collections, and
// reports the component counters through the public stats.
func TestCollectionSharedSnapshotCache(t *testing.T) {
	opts := collectionOptions(0)
	opts.Snapshots = NewSnapshotCache(4)

	build := func() *Collection {
		c, err := NewCollection(opts)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 5; e++ {
			for r := 0; r < 2; r++ {
				c.Upsert(fmt.Sprintf("e%d-r%d", e, r), Record{
					Text: fmt.Sprintf("left%02d mid%02d right%02d v%d", e, e, e, r),
				})
			}
		}
		return c
	}
	if _, err := build().Resolve(); err != nil {
		t.Fatal(err)
	}
	stats := opts.Snapshots.Stats()
	if stats.ComponentMisses == 0 || stats.ComponentEntries == 0 {
		t.Fatalf("cold resolve should populate the component cache: %+v", stats)
	}
	second, err := build().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if second.Delta.ComponentsFused != 0 {
		t.Fatalf("second collection with identical content should reuse every component: %+v", *second.Delta)
	}
	if got := opts.Snapshots.Stats(); got.ComponentHits == 0 {
		t.Fatalf("component hits not reported: %+v", got)
	}
}

// TestCollectionEvaluation checks that ground-truth metrics appear exactly
// when every record is labeled, honoring CrossSourceOnly.
func TestCollectionEvaluation(t *testing.T) {
	opts := collectionOptions(0)
	opts.CrossSourceOnly = true
	c, err := NewCollection(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Upsert("a", Record{Text: "acme rocket skate x100", Source: 0, Entity: "rocket"})
	c.Upsert("b", Record{Text: "acme rocket skate x100 deluxe", Source: 1, Entity: "rocket"})
	res, err := c.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluation == nil {
		t.Fatal("fully labeled collection should report evaluation")
	}
	if res.Evaluation.TP+res.Evaluation.FN != 1 {
		t.Fatalf("one cross-source true pair expected: %+v", *res.Evaluation)
	}

	// Removing a label removes the evaluation.
	c.Upsert("c", Record{Text: "unrelated widget press", Source: 0})
	res, err = c.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluation != nil {
		t.Fatal("partially labeled collection must not report evaluation")
	}
}

// TestCollectionEmpty pins the empty-collection contract.
func TestCollectionEmpty(t *testing.T) {
	c, err := NewCollection(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve(); err != ErrNoRecords {
		t.Fatalf("want ErrNoRecords, got %v", err)
	}
	c.Upsert("x", Record{Text: "solo record"})
	if _, ok := c.Delete("x"); !ok {
		t.Fatal("delete of live record should report true")
	}
	if _, ok := c.Delete("x"); ok {
		t.Fatal("double delete should report false")
	}
	if c.Len() != 0 {
		t.Fatalf("Len after delete: %d", c.Len())
	}
}
