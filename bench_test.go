package er_test

// Benchmark harness: one benchmark family per table and figure of the
// paper's evaluation section, plus the ablation benches called out in
// DESIGN.md §4. Benchmarks run the replicas at benchScale so the whole
// suite stays fast on one core; cmd/erbench regenerates the tables at the
// published sizes (-scale 1.0).
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/experiments"
)

const benchScale = 0.25

func benchConfig() experiments.Config {
	return experiments.Config{Seed: 1, Scale: benchScale}
}

// reportF1 attaches an F1 value to the benchmark output.
func reportF1(b *testing.B, name string, f1 float64) {
	b.ReportMetric(f1, name+"-F1")
}

// mustPipeline builds the standard pipeline for the named replica, failing
// the benchmark on configuration errors.
func mustPipeline(b *testing.B, cfg experiments.Config, name experiments.DatasetName) *er.Pipeline {
	b.Helper()
	p, err := cfg.Pipeline(name)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// mustBench prepares the engine-backed harness for the named replica.
func mustBench(b *testing.B, cfg experiments.Config, name experiments.DatasetName) *experiments.Bench {
	b.Helper()
	bench, err := cfg.Bench(name)
	if err != nil {
		b.Fatal(err)
	}
	return bench
}

// BenchmarkTable2 regenerates the Table II F1 comparison (all implemented
// methods on all replicas).
func BenchmarkTable2(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = experiments.RunTable2(cfg); err != nil {
			b.Fatal(err)
		}
	}
	for _, method := range []string{"Jaccard", "TF-IDF", "SimRank", "PageRank", "Hybrid", "ITER+CliqueRank"} {
		if row := res.Row(method); row != nil {
			b.ReportMetric(row.Product.Measured, method+"/Product-F1")
		}
	}
}

// BenchmarkTable2PerMethod measures each method's scoring cost in isolation
// on the Product replica (the paper's hardest string-similarity case).
func BenchmarkTable2PerMethod(b *testing.B) {
	cfg := benchConfig()
	p := mustPipeline(b, cfg, experiments.Product)
	b.Run("Jaccard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Jaccard()
		}
	})
	b.Run("TFIDF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.TFIDF()
		}
	})
	b.Run("SimRank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.SimRank()
		}
	})
	b.Run("PageRank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.PageRank()
		}
	})
	b.Run("ITERCliqueRank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Fusion()
		}
	})
}

// BenchmarkTable3 regenerates the Table III efficiency breakdown, reporting
// the measured CliqueRank-over-RSS speedups.
func BenchmarkTable3(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = experiments.RunTable3(cfg); err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.Speedup, string(row.Dataset)+"-RSS-speedup")
		b.ReportMetric(float64(row.GraphEdges), string(row.Dataset)+"-edges")
	}
}

// BenchmarkTable4 regenerates the Table IV Spearman comparison.
func BenchmarkTable4(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Table4Result
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = experiments.RunTable4(cfg); err != nil {
			b.Fatal(err)
		}
	}
	for di, name := range experiments.AllDatasets {
		b.ReportMetric(res.ITER[di].Measured, string(name)+"-ITER-rho")
		b.ReportMetric(res.PageRank[di].Measured, string(name)+"-PageRank-rho")
	}
}

// BenchmarkTable5 regenerates the Table V reinforcement study.
func BenchmarkTable5(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Table5Result
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = experiments.RunTable5(cfg); err != nil {
			b.Fatal(err)
		}
	}
	first := res.Iterations[0]
	last := res.Iterations[len(res.Iterations)-1]
	for di, name := range experiments.AllDatasets {
		b.ReportMetric(first.F1[di].Measured, string(name)+"-iter1-F1")
		b.ReportMetric(last.F1[di].Measured, fmt.Sprintf("%s-iter%d-F1", name, last.Iteration))
	}
}

// BenchmarkFigure4 regenerates the Figure 4 ranked score(t) series and
// reports the front/back decile means (the figure's quantitative claim).
func BenchmarkFigure4(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = experiments.RunFigure4(cfg); err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range res.Series {
		front, back := s.FrontBackMeans()
		b.ReportMetric(front, string(s.Dataset)+"-front-decile")
		b.ReportMetric(back, string(s.Dataset)+"-back-decile")
	}
}

// BenchmarkFigure5 regenerates the Figure 5 convergence traces and reports
// peak and final update magnitudes.
func BenchmarkFigure5(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Figure5Result
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = experiments.RunFigure5(cfg); err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range res.Series {
		peak := 0.0
		for _, v := range s.Updates {
			if v > peak {
				peak = v
			}
		}
		b.ReportMetric(peak, string(s.Dataset)+"-peak-update")
		if n := len(s.Updates); n > 0 {
			b.ReportMetric(s.Updates[n-1], string(s.Dataset)+"-final-update")
		}
	}
}

// benchAblation runs the fusion stages on the Product replica with
// modified core options and reports the F1.
func benchAblation(b *testing.B, modify func(*core.Options)) {
	cfg := benchConfig()
	bench := mustBench(b, cfg, experiments.Product)
	var f1 float64
	for i := 0; i < b.N; i++ {
		res, _, err := bench.Fusion(modify)
		if err != nil {
			b.Fatal(err)
		}
		if m, ok := bench.EvaluateMatches(res.Matches); ok {
			f1 = m.F1
		}
	}
	reportF1(b, "ablated", f1)
}

// BenchmarkAblationAlpha ablates the non-linear transition exponent
// (DESIGN.md ablation 1): α = 1 makes the walk linear and leaky.
func BenchmarkAblationAlpha(b *testing.B) {
	b.Run("alpha=20", func(b *testing.B) { benchAblation(b, nil) })
	b.Run("alpha=5", func(b *testing.B) { benchAblation(b, func(o *core.Options) { o.Alpha = 5 }) })
	b.Run("alpha=1", func(b *testing.B) { benchAblation(b, func(o *core.Options) { o.Alpha = 1 }) })
}

// BenchmarkAblationBonus disables the Eq. 12 target boosting (ablation 2);
// the recall loss concentrates in the Paper replica's big cliques, so this
// one runs there.
func BenchmarkAblationBonus(b *testing.B) {
	cfg := benchConfig()
	bench := mustBench(b, cfg, experiments.Paper)
	run := func(b *testing.B, disable bool) {
		var f1 float64
		for i := 0; i < b.N; i++ {
			res, _, err := bench.Fusion(func(o *core.Options) { o.DisableBonus = disable })
			if err != nil {
				b.Fatal(err)
			}
			if m, ok := bench.EvaluateMatches(res.Matches); ok {
				f1 = m.F1
			}
		}
		reportF1(b, "paper", f1)
	}
	b.Run("with-bonus", func(b *testing.B) { run(b, false) })
	b.Run("without-bonus", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationMask disables the ⊙ M_n early-stop masking (ablation 3).
func BenchmarkAblationMask(b *testing.B) {
	b.Run("masked", func(b *testing.B) { benchAblation(b, nil) })
	b.Run("unmasked", func(b *testing.B) { benchAblation(b, func(o *core.Options) { o.DisableMask = true }) })
}

// BenchmarkAblationDenominator drops the P_t punishment of Eq. 6
// (ablation 4), degrading ITER toward PageRank-style accumulation.
func BenchmarkAblationDenominator(b *testing.B) {
	b.Run("with-Pt", func(b *testing.B) { benchAblation(b, nil) })
	b.Run("without-Pt", func(b *testing.B) {
		benchAblation(b, func(o *core.Options) { o.DisableDenominator = true })
	})
}

// BenchmarkCliqueRankVsRSS compares the two matching-probability estimators
// head-to-head on one prepared record graph per dataset.
func BenchmarkCliqueRankVsRSS(b *testing.B) {
	cfg := benchConfig()
	for _, name := range experiments.AllDatasets {
		bench := mustBench(b, cfg, name)
		opts := bench.CoreOptions()
		// One fusion round yields the first-round record graph (ITER on the
		// all-ones prior), the same graph the hand-rolled loop built here.
		fres, _, err := bench.Fusion(func(o *core.Options) { o.FusionIterations = 1 })
		if err != nil {
			b.Fatal(err)
		}
		rg := fres.Graph
		b.Run("CliqueRank/"+string(name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.CliqueRank(rg, opts)
			}
		})
		b.Run("RSS/"+string(name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.RSS(rg, opts)
			}
		})
	}
}

// BenchmarkResolveEndToEnd measures the full public-API path per replica.
func BenchmarkResolveEndToEnd(b *testing.B) {
	for _, tc := range []struct {
		name string
		gen  func(er.ReplicaConfig) *er.Dataset
	}{
		{"Restaurant", er.RestaurantReplica},
		{"Product", er.ProductReplica},
		{"Paper", er.PaperReplica},
	} {
		d := tc.gen(er.ReplicaConfig{Seed: 1, Scale: benchScale})
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := er.Resolve(d, er.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFusionSharded100k measures the component-sharded fusion path
// (the er default) on a 100000-record synthetic corpus across worker
// counts. The corpus and its blocked candidate graph are shared across the
// sub-benchmarks through a snapshot cache — the snapshot key is
// worker-independent — so only the fusion stages are measured. Two fusion
// iterations bound the op time; the scores are bit-identical at every
// worker count (TestResolveShardingBitIdentical), so the workers=N samples
// are directly comparable and erbenchjson derives speedup_vs_1_worker from
// them. Skipped under -short: generation plus first blocking cost ~20s.
func BenchmarkFusionSharded100k(b *testing.B) {
	if testing.Short() {
		b.Skip("100k corpus setup is seconds-scale; skipped under -short")
	}
	d := er.SyntheticDataset(er.SyntheticConfig{
		Records:       100000,
		DuplicateRate: 0.3,
		VocabSize:     50000,
	})
	cache := er.NewSnapshotCache(2)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := er.DefaultOptions()
			opts.Workers = w
			opts.FusionIterations = 2
			opts.Snapshots = cache
			p := er.NewPipeline(d, opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Fusion()
			}
		})
	}
}

// BenchmarkResolveStages measures the full pipeline per replica and
// reports each stage's wall time from the engine trace as a stage-*-ms
// metric; cmd/erbenchjson folds these into BENCH_core.json.
func BenchmarkResolveStages(b *testing.B) {
	for _, tc := range []struct {
		name string
		gen  func(er.ReplicaConfig) *er.Dataset
	}{
		{"Restaurant", er.RestaurantReplica},
		{"Product", er.ProductReplica},
		{"Paper", er.PaperReplica},
	} {
		d := tc.gen(er.ReplicaConfig{Seed: 1, Scale: benchScale})
		b.Run(tc.name, func(b *testing.B) {
			var res *er.Result
			for i := 0; i < b.N; i++ {
				var err error
				if res, err = er.Resolve(d, er.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
			for _, st := range res.Trace {
				b.ReportMetric(float64(st.Wall)/float64(time.Millisecond), "stage-"+st.Stage+"-ms")
			}
		})
	}
}
