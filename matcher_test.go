package er

import (
	"bytes"
	"strings"
	"testing"
)

func matcherFixture(t *testing.T) (*Dataset, *Matcher) {
	t.Helper()
	d := NewDataset("catalog", []Record{
		{Text: "sony turntable pslx350h audio deck"},
		{Text: "sony pslx350h turntable dust audio"},
		{Text: "pioneer receiver vsx321 audio amp"},
		{Text: "pioneer vsx321 receiver audio black"},
		{Text: "canon powershot a590 camera zoom"},
		{Text: "canon a590 powershot camera case"},
	})
	p := NewPipeline(d, DefaultOptions())
	out := p.Fusion()
	return d, p.Matcher(out)
}

func TestMatcherFindsDuplicates(t *testing.T) {
	_, m := matcherFixture(t)
	got := m.Match("sony pslx350h turntable refurbished", 3)
	if len(got) == 0 {
		t.Fatal("no candidates")
	}
	if got[0].Record != 0 && got[0].Record != 1 {
		t.Errorf("top candidate = %d, want a sony turntable record", got[0].Record)
	}
	// The model code must rank among the top shared terms.
	if got[0].SharedTerms[0] != "pslx350h" {
		t.Errorf("top shared term = %q, want pslx350h", got[0].SharedTerms[0])
	}
	// A pioneer record, sharing only "audio"-free terms... it shares
	// nothing weighted with the query, so it must score below the sonys.
	for _, c := range got {
		if c.Record >= 2 && c.Similarity >= got[0].Similarity {
			t.Errorf("unrelated record %d ranked at %g >= top %g", c.Record, c.Similarity, got[0].Similarity)
		}
	}
}

func TestMatcherNoOverlap(t *testing.T) {
	_, m := matcherFixture(t)
	if got := m.Match("completely unrelated text zzz", 5); len(got) != 0 {
		t.Errorf("no-overlap query returned %v", got)
	}
}

func TestMatcherTopK(t *testing.T) {
	_, m := matcherFixture(t)
	all := m.Match("canon powershot a590 camera", 0)
	if len(all) < 2 {
		t.Fatalf("expected at least the two canon records, got %v", all)
	}
	one := m.Match("canon powershot a590 camera", 1)
	if len(one) != 1 || one[0].Record != all[0].Record || one[0].Similarity != all[0].Similarity {
		t.Error("k=1 must return the top candidate of the full ranking")
	}
}

func TestMatcherSaveLoadRoundTrip(t *testing.T) {
	_, m := matcherFixture(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadMatcher(&buf)
	if err != nil {
		t.Fatal(err)
	}
	query := "sony pslx350h turntable"
	a := m.Match(query, 3)
	b := back.Match(query, 3)
	if len(a) != len(b) {
		t.Fatalf("round trip changed candidate count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Record != b[i].Record || a[i].Similarity != b[i].Similarity {
			t.Fatalf("round trip changed ranking at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLoadMatcherErrors(t *testing.T) {
	if _, err := LoadMatcher(strings.NewReader("not json")); err == nil {
		t.Error("garbage input must fail")
	}
	if _, err := LoadMatcher(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("unknown version must fail")
	}
	if _, err := LoadMatcher(strings.NewReader(`{"version":1}`)); err == nil {
		t.Error("missing fields must fail")
	}
}
