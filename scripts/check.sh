#!/usr/bin/env bash
# check.sh — the repo's single verification gate. CI runs exactly this
# script, and so should you before pushing: if it exits 0, CI agrees.
#
# Stages, cheap to expensive: formatting, vet (full suite, then the
# concurrency/format analyzers named explicitly so a stock-vet regression
# cannot silently drop them), build, erlint (the repo-specific invariant
# suite in cmd/erlint), the race-enabled tests, and the erserve daemon
# smoke test (real binary, real sockets, real SIGTERM drain).
#
# govulncheck is intentionally absent: it needs network access to the
# vulnerability database and this module is stdlib-only and built offline.
# The placeholder lives in .github/workflows/ci.yml next to the other jobs;
# enable it there when the build environment gains network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go vet (explicit: copylocks, loopclosure, printf)"
go vet -copylocks -loopclosure -printf ./...

echo "==> go build"
go build ./...

# Build the linter once, then run each analyzer as its own named step so a
# failure log says *which* invariant broke (lock discipline vs durability
# protocol vs allocation budget), not just "erlint failed". The final
# full-suite pass catches what the per-analyzer loop cannot: stale-directive
# detection only fires for directives whose every named analyzer ran.
echo "==> erlint (build)"
erlint_bin=$(mktemp -d)/erlint
trap 'rm -rf "$(dirname "$erlint_bin")"' EXIT
go build -o "$erlint_bin" ./cmd/erlint
for analyzer in nopanic guardloop determinism floatguard errwrap optzero \
                lockhold lockorder goleak fsyncorder hotalloc; do
    echo "==> erlint: $analyzer"
    "$erlint_bin" -enable "$analyzer" ./...
done
echo "==> erlint: full suite (stale-directive audit)"
"$erlint_bin" ./...

echo "==> go test -race -shuffle=on"
go test -race -shuffle=on ./...

# Named explicitly even though the full suite above already ran it: this
# is the acceptance test for the durability contract (kill -9 a writer,
# replay, verify every acknowledged record), and a future -run filter or
# test-cache tweak must not be able to skip it silently.
echo "==> crash-recovery acceptance (SIGKILL + replay)"
go test -race -count=1 -run 'TestCrashRecoveryKill9' ./internal/faultcheck/

# Likewise named: the exactly-once acceptance. Retried mutations driven
# through the network-fault proxy (cut mid-request, dropped responses,
# resets) — with a SIGKILL crash-restart in the middle — must journal each
# logical request exactly once.
echo "==> exactly-once chaos acceptance (netfault proxy + SIGKILL)"
go test -race -count=1 -run 'TestNetFaultExactlyOnce' ./internal/faultcheck/

echo "==> erserve smoke (boot, resolve, SIGKILL recovery, drain)"
./scripts/smoke_erserve.sh

echo "All checks passed."
