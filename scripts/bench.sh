#!/usr/bin/env bash
# bench.sh — regenerate the benchmark-regression baseline BENCH_core.json.
#
# Runs the core kernel benchmarks (ITER / CliqueRank / fusion, including the
# Product-scale workers={1,2,4} fan-out matrix) plus the root package's
# BenchmarkResolveStages (whose stage-<name>-ms metrics record the engine's
# per-stage wall clock), BenchmarkFusionSharded100k (the 100k-record
# component-sharded fusion matrix) and BenchmarkBlocking100k (the
# 100k-record candidate-generation matrix over the incremental index's
# batch builder), pipes the output through
# cmd/erbenchjson, and writes BENCH_core.json at the repo root: ns/op,
# B/op, allocs/op per kernel and worker count, per-stage timings under
# stage_ms, each fan-out's speedup against the same run's workers=1, and
# the serial speedup against the committed pre-optimization seed in
# results/bench_baseline_seed.txt.
#
#   scripts/bench.sh            # full run (benchtime 2s; minutes)
#   scripts/bench.sh -quick     # CI smoke: benchtime 50ms and -short (the
#                               # seconds-scale 100k corpus bench is
#                               # skipped); timing is noise, but the file
#                               # shape and the alloc counts
#                               # (benchtime-independent) stay meaningful
#
# The raw `go test -bench` output is preserved in results/bench_latest.txt
# so a surprising JSON number can be traced to its source line.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime=2s
short=""
if [ "${1:-}" = "-quick" ]; then
    benchtime=50ms
    short="-short"
fi

mkdir -p results
echo "==> go test -bench (benchtime $benchtime)" >&2
go test ./internal/core/ -run xxx -bench 'ITER|CliqueRank|Fusion' \
    -benchmem -benchtime "$benchtime" -timeout 30m | tee results/bench_latest.txt

echo "==> go test -bench ResolveStages + FusionSharded100k + Blocking100k (stage timings, 100k matrices)" >&2
go test . -run xxx -bench 'ResolveStages|FusionSharded100k|Blocking100k' $short \
    -benchtime "$benchtime" -timeout 30m | tee -a results/bench_latest.txt

echo "==> erbenchjson -> BENCH_core.json" >&2
go run ./cmd/erbenchjson -baseline results/bench_baseline_seed.txt \
    < results/bench_latest.txt > BENCH_core.json

echo "wrote BENCH_core.json" >&2
