#!/usr/bin/env bash
# smoke_erserve.sh — end-to-end smoke test of the resolution daemon.
#
# Boots cmd/erserve on an ephemeral port, resolves a benchmark replica over
# HTTP, checks the observability endpoints, then sends SIGTERM and requires
# a clean graceful drain (exit code 0). A second phase boots the daemon
# with -data-dir, builds a collection, SIGKILLs the process mid-flight and
# requires the restarted daemon to recover every acknowledged mutation and
# serve identical resolve results. Run by scripts/check.sh and CI; it is
# the one test that exercises the real binary, real sockets and real
# signals rather than httptest plumbing.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
trap 'if [ -n "$pid" ]; then kill -9 "$pid" 2>/dev/null || true; fi; rm -rf "$workdir"' EXIT

go build -o "$workdir/erserve" ./cmd/erserve
go build -o "$workdir/erctl" ./cmd/erctl

# boot starts the daemon with the given extra flags and scrapes its
# ephemeral listen address into $base. The daemon prints "erserve
# listening on <addr>" once bound.
out="$workdir/erserve.log"
boot() {
    : >"$out"
    "$workdir/erserve" -addr 127.0.0.1:0 -quiet -drain-budget 10s "$@" >"$out" 2>&1 &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^erserve listening on //p' "$out" | head -n1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "erserve never reported its listen address:" >&2
        cat "$out" >&2
        exit 1
    fi
    base="http://$addr"
}

# wait_ready polls /readyz until recovery finishes (or gives up).
wait_ready() {
    for _ in $(seq 1 100); do
        curl -sf "$base/readyz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "erserve never became ready:" >&2
    curl -s "$base/readyz" >&2 || true
    exit 1
}

boot

echo "==> erserve smoke: healthz + readyz"
curl -sf "$base/healthz" >/dev/null
curl -sf "$base/readyz" >/dev/null

echo "==> erserve smoke: resolve replica"
resp=$(curl -sf -X POST "$base/resolve" -H 'Content-Type: application/json' \
    -d '{"replica":"restaurant","scale":0.2,"seed":7}')
if ! echo "$resp" | grep -q '"state": "completed"'; then
    echo "unexpected resolve response: $resp" >&2
    exit 1
fi

echo "==> erserve smoke: stats"
stats=$(curl -sf "$base/stats")
for needle in '"completed": 1' '"in_flight": 0' '"draining": false'; do
    if ! echo "$stats" | grep -q "$needle"; then
        echo "stats missing $needle: $stats" >&2
        exit 1
    fi
done

echo "==> erserve smoke: SIGTERM drain"
kill -TERM "$pid"
# A clean graceful drain must exit 0; set -e turns anything else into a
# smoke failure.
wait "$pid"
pid=""

# --- Phase 2: durable collections survive SIGKILL -----------------------

datadir="$workdir/data"

echo "==> erserve smoke: durable boot (-data-dir)"
boot -data-dir "$datadir"
wait_ready

echo "==> erserve smoke: create collection + upsert records"
curl -sf -X POST "$base/collections" -H 'Content-Type: application/json' \
    -d '{"name":"smoke"}' >/dev/null
i=0
for text in \
    "joes pizza 123 main st new york" \
    "joe's pizza 123 main street new york ny" \
    "blue bottle coffee 300 webster st oakland" \
    "blue bottle coffee co 300 webster street oakland ca" \
    "golden gate hardware supply san francisco"; do
    curl -sf -X PUT "$base/collections/smoke/records/r$i" \
        -H 'Content-Type: application/json' \
        -d "{\"text\":\"$text\"}" >/dev/null
    i=$((i + 1))
done

echo "==> erserve smoke: erctl CLI (retrying client, taxonomy exit codes)"
erctl() { "$workdir/erctl" -addr "$base" "$@"; }
erctl ready >/dev/null
erctl put smoke r5 "mission chinese food 2234 mission st" >/dev/null
erctl ls | grep -q 'smoke' || { echo "erctl ls missing collection" >&2; exit 1; }
erctl ls smoke | grep -q 'r5' || { echo "erctl put did not land" >&2; exit 1; }
erctl del smoke r5 >/dev/null
# Creating an existing collection must fail with the documented conflict
# exit code (4), not a generic 1.
rc=0; erctl create smoke >/dev/null 2>&1 || rc=$?
if [ "$rc" != 4 ]; then
    echo "erctl create on existing collection exited $rc, want 4 (conflict)" >&2
    exit 1
fi
rc=0; erctl ls nosuch >/dev/null 2>&1 || rc=$?
if [ "$rc" != 3 ]; then
    echo "erctl ls on missing collection exited $rc, want 3 (not found)" >&2
    exit 1
fi
erctl stats | grep -q '"idempotency"' || { echo "erctl stats missing idempotency block" >&2; exit 1; }

before=$(curl -sf -X POST "$base/collections/smoke/resolve?pairs=1" \
    -H 'Content-Type: application/json' -d '{"options":{"seed":7}}')
if ! echo "$before" | grep -q '"state": "completed"'; then
    echo "unexpected collection resolve response: $before" >&2
    exit 1
fi

echo "==> erserve smoke: SIGKILL (no drain, no final snapshot)"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "==> erserve smoke: restart + recovery"
boot -data-dir "$datadir"
wait_ready

records=$(curl -sf "$base/collections/smoke")
if ! echo "$records" | grep -q '"r4"'; then
    echo "restarted daemon lost records: $records" >&2
    exit 1
fi

after=$(curl -sf -X POST "$base/collections/smoke/resolve?pairs=1" \
    -H 'Content-Type: application/json' -d '{"options":{"seed":7}}')
# Identical corpus, identical options: the resolution outcome — counts,
# convergence, every match pair — must be identical across the crash. Only
# the job ID and wall-clock timings legitimately differ, so drop those
# lines and compare everything else byte for byte.
strip() {
    echo "$1" | grep -v '"job_id"\|_ms"'
}
if [ "$(strip "$before")" != "$(strip "$after")" ]; then
    echo "resolve results differ across crash-restart:" >&2
    echo "before: $before" >&2
    echo "after:  $after" >&2
    exit 1
fi

echo "==> erserve smoke: mutation-trace replay (delta-scoped resolve)"
# ergen writes a deterministic upsert/delete trace; erctl replay drives it
# through the retrying client. Resolves carry no option overrides, so they
# take the incremental path: the replay output must report the delta work
# split, and the second resolve of the trace must reuse prior components.
go build -o "$workdir/ergen" ./cmd/ergen
"$workdir/ergen" -records 60 -mutations 20 -resolve-every 10 \
    -name replaytrace -out "$workdir" >/dev/null
curl -sf -X POST "$base/collections" -H 'Content-Type: application/json' \
    -d '{"name":"replay"}' >/dev/null
replay_out=$(erctl replay replay "$workdir/replaytrace.mutations.jsonl")
echo "$replay_out"
if ! echo "$replay_out" | grep -q 'components re-fused'; then
    echo "replay resolves never took the delta-scoped path: $replay_out" >&2
    exit 1
fi
# The trace ends with back-to-back resolves; the last one mutated nothing,
# so it must re-fuse zero components.
if ! echo "$replay_out" | tail -n 2 | head -n 1 | grep -q 'delta 0/'; then
    echo "no-op resolve re-fused components: $replay_out" >&2
    exit 1
fi
stats=$(curl -sf "$base/stats")
for needle in '"delta_resolves": 3' '"resolver_rebuilds": 1'; do
    if ! echo "$stats" | grep -q "$needle"; then
        echo "stats missing $needle after replay: $stats" >&2
        exit 1
    fi
done

echo "==> erserve smoke: SIGTERM drain (durable)"
kill -TERM "$pid"
wait "$pid"
pid=""

echo "erserve smoke passed."
