#!/usr/bin/env bash
# smoke_erserve.sh — end-to-end smoke test of the resolution daemon.
#
# Boots cmd/erserve on an ephemeral port, resolves a benchmark replica over
# HTTP, checks the observability endpoints, then sends SIGTERM and requires
# a clean graceful drain (exit code 0). Run by scripts/check.sh and CI; it
# is the one test that exercises the real binary, real sockets and real
# signals rather than httptest plumbing.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/erserve" ./cmd/erserve

out="$workdir/erserve.log"
"$workdir/erserve" -addr 127.0.0.1:0 -quiet -drain-budget 10s >"$out" 2>&1 &
pid=$!
# Second trap layer: never leave the daemon running, whatever fails below.
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

# The daemon prints "erserve listening on <addr>" once bound; scrape it.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^erserve listening on //p' "$out" | head -n1)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "erserve never reported its listen address:" >&2
    cat "$out" >&2
    exit 1
fi
base="http://$addr"

echo "==> erserve smoke: healthz + readyz"
curl -sf "$base/healthz" >/dev/null
curl -sf "$base/readyz" >/dev/null

echo "==> erserve smoke: resolve replica"
resp=$(curl -sf -X POST "$base/resolve" -H 'Content-Type: application/json' \
    -d '{"replica":"restaurant","scale":0.2,"seed":7}')
if ! echo "$resp" | grep -q '"state": "completed"'; then
    echo "unexpected resolve response: $resp" >&2
    exit 1
fi

echo "==> erserve smoke: stats"
stats=$(curl -sf "$base/stats")
for needle in '"completed": 1' '"in_flight": 0' '"draining": false'; do
    if ! echo "$stats" | grep -q "$needle"; then
        echo "stats missing $needle: $stats" >&2
        exit 1
    fi
done

echo "==> erserve smoke: SIGTERM drain"
kill -TERM "$pid"
# A clean graceful drain must exit 0; set -e turns anything else into a
# smoke failure.
wait "$pid"

echo "erserve smoke passed."
