package er

import (
	"context"

	"repro/internal/blocking"
	"repro/internal/engine"
	"repro/internal/index"
)

// CollectionDelta reports what one mutation changed in a collection's
// candidate pair set. Pair endpoints are external record IDs.
type CollectionDelta struct {
	// AddedPairs and RemovedPairs list the candidate pairs the mutation
	// created and destroyed.
	AddedPairs, RemovedPairs [][2]string
	// Touched lists the external IDs whose candidate rows were recomputed.
	Touched []string
	// Rebuilt reports that the mutation's blast radius made an incremental
	// update more expensive than starting over (a frequency threshold
	// crossed on a high-df term), so the pair table was rebuilt instead;
	// the per-pair lists are empty in that case.
	Rebuilt bool
}

// DeltaStats is the work split of one delta-scoped resolve (see
// Collection.ResolveContext): how many candidate-graph components the run
// saw, how many it served from the component cache, and how many it
// actually re-fused.
type DeltaStats struct {
	Components                        int
	ComponentsReused, ComponentsFused int
	PairsReused, PairsFused           int
}

// Collection is a mutable keyed record set that resolves incrementally.
// Upsert and Delete maintain an inverted index and the blocking survivor
// set in time proportional to the mutation's blast radius, and
// ResolveContext re-fuses only the connected components the mutations
// touched, merging every unchanged component's memoized result — the
// streaming counterpart to the batch Resolve.
//
// Resolution semantics are per-component: each connected component of the
// candidate graph runs the full ITER ⇄ CliqueRank loop on its own local
// graph (own seeded RNG, own convergence test, own term weights). The
// result is a pure function of the collection state and options —
// deterministic and independent of mutation order or resolve history — but
// it is not bit-identical to the batch Resolve, whose ITER couples
// components through a global convergence test and RNG sequence.
//
// A Collection is not safe for concurrent use; callers serialize access.
type Collection struct {
	opts     Options
	ix       *index.Index
	entities map[string]string
	cache    *engine.Cache
}

// NewCollection returns an empty collection under the given options
// (validated as in ResolveContext). Candidate generation follows
// Options.CrossSourceOnly, MaxTermRecords, MinSharedTerms and MinJaccard;
// MaxCandidatePairs is ignored — the incremental pair table has no
// degradation path. When Options.Snapshots is set its cache memoizes the
// per-component fusion results (shared across collections); otherwise the
// collection keeps a private cache, so delta-scoped reuse works either way.
func NewCollection(opts Options) (*Collection, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	cache := opts.Snapshots.engineCache()
	if cache == nil {
		cache = engine.NewCache(0)
	}
	return &Collection{
		opts: opts,
		ix: index.New(index.Config{
			Corpus: opts.corpusOptions(),
			Block: index.BatchOptions{
				CrossSourceOnly: opts.CrossSourceOnly,
				MaxTermRecords:  opts.MaxTermRecords,
				MinJaccard:      opts.MinJaccard,
				MinSharedTerms:  opts.MinSharedTerms,
				Workers:         opts.Workers,
			},
		}),
		entities: make(map[string]string),
		cache:    cache,
	}, nil
}

// Len returns the number of live records.
func (c *Collection) Len() int { return c.ix.Len() }

// Upsert inserts or replaces the record stored under id and returns what
// the mutation changed in the candidate pair set.
func (c *Collection) Upsert(id string, rec Record) CollectionDelta {
	if rec.Entity != "" {
		c.entities[id] = rec.Entity
	} else {
		delete(c.entities, id)
	}
	return fromIndexDelta(c.ix.Upsert(id, rec.Text, rec.Source))
}

// Delete removes the record stored under id, reporting whether it existed.
func (c *Collection) Delete(id string) (CollectionDelta, bool) {
	d, ok := c.ix.Delete(id)
	if ok {
		delete(c.entities, id)
	}
	return fromIndexDelta(d), ok
}

func fromIndexDelta(d index.Delta) CollectionDelta {
	return CollectionDelta{
		AddedPairs:   d.AddedPairs,
		RemovedPairs: d.RemovedPairs,
		Touched:      d.Touched,
		Rebuilt:      d.Rebuilt,
	}
}

// Resolve is ResolveContext with a background context.
func (c *Collection) Resolve() (*Result, error) {
	return c.ResolveContext(context.Background())
}

// ResolveContext resolves the collection's current state: it materializes
// the corpus and candidate graph from the index (bit-identical to a batch
// build over the live records in ascending external-ID order), partitions
// the candidate graph into connected components, and fuses each component —
// reusing every component whose content key already has a memoized result,
// so a resolve after a small mutation re-fuses only what the mutation
// touched. Record positions in the Result (Matches, Clusters) index
// Result.IDs, the ascending external-ID order of this resolve. Evaluation
// is populated when every record carries an entity label. The Options
// budgets and cancellation behave as in the package-level ResolveContext.
func (c *Collection) ResolveContext(ctx context.Context) (res *Result, err error) {
	defer recoverToError(&err)
	if c.ix.Len() == 0 {
		return nil, ErrNoRecords
	}
	ctx, cancel := c.opts.withWallClock(ctx)
	defer cancel()
	run := engine.NewRun(ctx, engine.RunOptions{Workers: c.opts.Workers})

	var v *index.View
	if err := run.Stage(engine.StageMaterialize, func(st *engine.StageTrace) error {
		v = c.ix.Materialize()
		st.In, st.InUnit = len(v.IDs), "records"
		st.Out, st.OutUnit = v.Graph.NumPairs(), "pairs"
		return nil
	}); err != nil {
		return nil, wrapRunErr(ctx, err)
	}

	out, stats, err := engine.DeltaFuse(run, v.Graph, len(v.IDs), c.opts.coreOptions(), c.cache)
	if err != nil {
		return nil, wrapRunErr(ctx, err)
	}
	clusters, err := engine.Cluster(run, len(v.IDs), v.Graph.Pairs, out.Matches)
	if err != nil {
		return nil, wrapRunErr(ctx, err)
	}
	res = &Result{
		Probabilities:  out.P,
		Clusters:       clusters,
		GraphNodes:     out.Nodes,
		GraphEdges:     out.Edges,
		Converged:      out.Converged,
		NumericRepairs: out.NumericRepairs,
		IDs:            v.IDs,
		Delta: &DeltaStats{
			Components:       stats.Components,
			ComponentsReused: stats.ComponentsReused,
			ComponentsFused:  stats.ComponentsFused,
			PairsReused:      stats.PairsReused,
			PairsFused:       stats.PairsFused,
		},
	}
	for k, matched := range out.Matches {
		if !matched {
			continue
		}
		pr := v.Graph.Pairs[k]
		res.Matches = append(res.Matches, Match{I: int(pr.I), J: int(pr.J), Probability: out.P[k]})
	}
	if truth, ok := c.truthFor(v); ok {
		prf, err := engine.Evaluate(run, v.Graph.Pairs, out.Matches, truth, len(truth))
		if err != nil {
			return nil, wrapRunErr(ctx, err)
		}
		m := fromPRF(prf)
		res.Evaluation = &m
	}
	trace := run.Trace()
	res.Trace = fromEngineTrace(trace)
	if st := trace.Find(engine.StageDeltaFuse); st != nil {
		res.Elapsed = st.Wall
	}
	return res, nil
}

// truthFor derives the ground-truth matching pairs over the materialized
// record order, following the batch convention: every record must be
// labeled, and under CrossSourceOnly only cross-source pairs count.
func (c *Collection) truthFor(v *index.View) (map[uint64]bool, bool) {
	if len(c.entities) != len(v.IDs) {
		return nil, false
	}
	byEntity := make(map[string][]int32)
	for pos, id := range v.IDs {
		label, ok := c.entities[id]
		if !ok {
			return nil, false
		}
		byEntity[label] = append(byEntity[label], int32(pos))
	}
	truth := make(map[uint64]bool)
	for _, recs := range byEntity {
		for a := 0; a < len(recs); a++ {
			for b := a + 1; b < len(recs); b++ {
				i, j := recs[a], recs[b]
				if c.opts.CrossSourceOnly && v.Sources[i] == v.Sources[j] {
					continue
				}
				truth[blocking.Key(i, j)] = true
			}
		}
	}
	return truth, true
}
