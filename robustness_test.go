package er_test

// Robustness acceptance tests for the hardened execution layer: context
// cancellation latency, resource budgets with graceful degradation, the
// error taxonomy, degenerate inputs, and the adversarial dataset suite
// exercised against every scoring method.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	er "repro"
	"repro/internal/faultcheck"
)

func finite(t *testing.T, label string, v []float64) {
	t.Helper()
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("%s[%d] = %g is not finite", label, i, x)
		}
	}
}

func probabilities(t *testing.T, label string, v []float64) {
	t.Helper()
	finite(t, label, v)
	for i, x := range v {
		if x < 0 || x > 1 {
			t.Fatalf("%s[%d] = %g outside [0,1]", label, i, x)
		}
	}
}

func toRecords(rs []faultcheck.Record) []er.Record {
	out := make([]er.Record, len(rs))
	for i, r := range rs {
		out[i] = er.Record{Text: r.Text, Source: r.Source, Entity: r.Entity}
	}
	return out
}

// TestAdversarialCasesAllMethods runs every scoring method of the pipeline
// on every adversarial dataset of the fault-injection suite. No method may
// panic or emit a non-finite score, whatever the corpus shape.
func TestAdversarialCasesAllMethods(t *testing.T) {
	for _, tc := range faultcheck.Cases() {
		t.Run(tc.Name, func(t *testing.T) {
			d := er.NewDataset(tc.Name, toRecords(tc.Records))
			p := er.NewPipeline(d, er.DefaultOptions())
			methods := map[string]func() []float64{
				"jaccard":     p.Jaccard,
				"tfidf":       p.TFIDF,
				"soft-tfidf":  p.SoftTFIDF,
				"monge-elkan": p.MongeElkan,
				"simrank":     p.SimRank,
				"birank":      func() []float64 { s, _ := p.BiRank(); return s },
				"pagerank":    func() []float64 { s, _ := p.PageRank(); return s },
				"hybrid":      func() []float64 { return p.Hybrid(0.5) },
			}
			for name, method := range methods {
				scores := method()
				if len(scores) != p.NumCandidates() {
					t.Fatalf("%s: %d scores for %d candidates", name, len(scores), p.NumCandidates())
				}
				finite(t, name, scores)
			}
			out := p.Fusion()
			finite(t, "term-weights", out.TermWeights)
			finite(t, "similarities", out.Similarities)
			probabilities(t, "probabilities", out.Probabilities)
			if out.NumericRepairs != 0 {
				t.Errorf("fusion needed %d numeric repairs", out.NumericRepairs)
			}
			res, err := er.Resolve(d, er.DefaultOptions())
			if err != nil {
				t.Fatalf("Resolve: %v", err)
			}
			seen := 0
			for _, c := range res.Clusters {
				seen += len(c)
			}
			if seen != d.NumRecords() {
				t.Fatalf("clusters cover %d of %d records", seen, d.NumRecords())
			}
		})
	}
}

// TestLoadCSVContextTaxonomy pins the LoadCSVContext error classification:
// malformed bytes wrap ErrBadData, cancellation mid-parse wraps the context
// cause, and a clean load matches LoadCSV.
func TestLoadCSVContextTaxonomy(t *testing.T) {
	good := "id,entity,source,text\n0,e0,0,alpha beta\n1,e0,0,alpha beta\n"
	d, err := er.LoadCSVContext(context.Background(), strings.NewReader(good), "ok")
	if err != nil || d.NumRecords() != 2 {
		t.Fatalf("clean load: d=%v err=%v", d, err)
	}

	if _, err := er.LoadCSVContext(context.Background(),
		strings.NewReader("\"unterminated quote\n"), "bad"); !errors.Is(err, er.ErrBadData) {
		t.Fatalf("malformed csv: %v, want ErrBadData", err)
	}
	frag := faultcheck.New(strings.NewReader(good), 1)
	if d2, err := er.LoadCSVContext(context.Background(), frag, "frag"); err != nil || d2.NumRecords() != 2 {
		t.Fatalf("fragmentation alone must be invisible: d=%v err=%v", d2, err)
	}
	broken := faultcheck.New(strings.NewReader(good), 1)
	broken.FailAfter = 12
	if _, err := er.LoadCSVContext(context.Background(), broken, "chaos"); !errors.Is(err, er.ErrBadData) {
		t.Fatalf("mid-stream read fault: %v, want ErrBadData", err)
	} else if !errors.Is(err, faultcheck.ErrInjected) {
		t.Fatalf("mid-stream read fault %v lost the injected cause", err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := er.LoadCSVContext(canceled, strings.NewReader(good), "canceled"); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled load: %v, want context.Canceled", err)
	}
}

// TestResolveContextCanceledFast is the latency acceptance criterion:
// calling ResolveContext with an already-canceled context on the Paper
// replica must return an error wrapping context.Canceled in under 100ms.
func TestResolveContextCanceledFast(t *testing.T) {
	d := er.PaperReplica(er.ReplicaConfig{}) // generated outside the timed window
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := er.ResolveContext(ctx, d, er.DefaultOptions())
	elapsed := time.Since(start)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want error wrapping context.Canceled, got res=%v err=%v", res, err)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("canceled resolve took %s, want < 100ms", elapsed)
	}
}

// TestResolveContextCancelMidRun cancels while the fusion loop is running
// (from the Progress callback) and requires a prompt cooperative abort.
func TestResolveContextCancelMidRun(t *testing.T) {
	d := er.ProductReplica(er.ReplicaConfig{Scale: 0.3})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := er.DefaultOptions()
	opts.FusionIterations = 50
	opts.Progress = func(it int, s, p []float64, elapsed time.Duration) {
		if it == 1 {
			cancel()
		}
	}
	res, err := er.ResolveContext(ctx, d, opts)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want error wrapping context.Canceled, got res=%v err=%v", res, err)
	}
}

// TestMaxWallClockBudget requires an expired wall-clock budget to surface
// as an error wrapping BOTH ErrBudgetExceeded and context.DeadlineExceeded.
func TestMaxWallClockBudget(t *testing.T) {
	d := er.ProductReplica(er.ReplicaConfig{Scale: 0.3})
	opts := er.DefaultOptions()
	opts.MaxWallClock = time.Nanosecond
	res, err := er.ResolveContext(context.Background(), d, opts)
	if res != nil || err == nil {
		t.Fatalf("want budget error, got res=%v err=%v", res, err)
	}
	if !errors.Is(err, er.ErrBudgetExceeded) {
		t.Fatalf("error %v does not wrap ErrBudgetExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// TestFusionContextWallClock pins the staged-API budget: MaxWallClock must
// bound Pipeline.FusionContext itself, not only ResolveContext (regression:
// the CLI's staged path once dropped the budget after construction), while
// the error-free legacy Fusion keeps running unbounded.
func TestFusionContextWallClock(t *testing.T) {
	d := er.ProductReplica(er.ReplicaConfig{Scale: 0.3})
	opts := er.DefaultOptions()
	opts.MaxWallClock = time.Nanosecond
	p := er.NewPipeline(d, opts)
	if _, err := p.FusionContext(context.Background()); !errors.Is(err, er.ErrBudgetExceeded) {
		t.Fatalf("FusionContext under an expired budget returned %v, want ErrBudgetExceeded", err)
	}
	if out := p.Fusion(); out == nil || len(out.Probabilities) != p.NumCandidates() {
		t.Fatal("legacy Fusion must ignore MaxWallClock and complete")
	}
}

// giantBlockRecords builds nBlocks blocks of identical records each, so
// blocking naturally emits nBlocks * size*(size-1)/2 candidate pairs that
// neither Jaccard tightening (within-block Jaccard is 1) nor the term-df
// cap (block size stays under the cap floor) can reduce.
func giantBlockRecords(nBlocks, size int) []er.Record {
	var out []er.Record
	for b := 0; b < nBlocks; b++ {
		text := fmt.Sprintf("blk%da blk%db blk%dc", b, b, b)
		for i := 0; i < size; i++ {
			out = append(out, er.Record{Text: text})
		}
	}
	return out
}

// TestMaxCandidatePairsTruncation is the degradation acceptance criterion:
// a budget smaller than the natural blocking output triggers the
// degradation path, populates the report, and still yields finite NaN-free
// probabilities within the budget.
func TestMaxCandidatePairsTruncation(t *testing.T) {
	d := er.NewDataset("giant", giantBlockRecords(40, 6)) // 40 * 15 = 600 natural pairs
	opts := er.DefaultOptions()
	opts.MaxCandidatePairs = 100
	res, err := er.ResolveContext(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degradation == nil {
		t.Fatal("budget exceeded but Degradation is nil")
	}
	dr := res.Degradation
	if dr.OriginalPairs != 600 {
		t.Errorf("OriginalPairs = %d, want 600", dr.OriginalPairs)
	}
	if dr.FinalPairs != 100 || len(res.Probabilities) != 100 {
		t.Errorf("FinalPairs = %d, probabilities = %d, want 100", dr.FinalPairs, len(res.Probabilities))
	}
	if dr.TruncatedPairs != 500 {
		t.Errorf("TruncatedPairs = %d, want 500", dr.TruncatedPairs)
	}
	if len(dr.Steps) == 0 {
		t.Error("degradation steps not narrated")
	}
	probabilities(t, "p", res.Probabilities)
}

// TestMaxCandidatePairsTightening checks the graceful path: when parameter
// tightening alone reaches the budget, no truncation happens.
func TestMaxCandidatePairsTightening(t *testing.T) {
	// 40 blocks of 6 records sharing two block terms plus three unique
	// terms each: within-block Jaccard is 2/8 = 0.25, above the default
	// MinJaccard 0.2 but below the first tightening step 0.35, so one
	// tightening pass prunes every pair and truncation is never reached.
	var recs []er.Record
	for b := 0; b < 40; b++ {
		for i := 0; i < 6; i++ {
			id := b*6 + i
			recs = append(recs, er.Record{
				Text: fmt.Sprintf("b%dx b%dy u%da u%db u%dc", b, b, id, id, id),
			})
		}
	}
	d := er.NewDataset("tighten", recs)
	opts := er.DefaultOptions()
	opts.MaxCandidatePairs = 50
	res, err := er.ResolveContext(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degradation == nil {
		t.Fatal("budget exceeded but Degradation is nil")
	}
	if res.Degradation.TruncatedPairs != 0 {
		t.Errorf("tightening should have sufficed, truncated %d", res.Degradation.TruncatedPairs)
	}
	if got := len(res.Probabilities); got > 50 {
		t.Errorf("%d pairs exceed the budget of 50", got)
	}
	probabilities(t, "p", res.Probabilities)
}

// TestDegradationStepsOrdering pins the narration contract of
// DegradationReport.Steps: tightening steps come first, in the order they
// were attempted, with MinJaccard strictly increasing and MaxTermRecords
// strictly decreasing, and a truncation step — when present — is the
// single final entry. Downstream log consumers parse these strings, so
// their shape and order are part of the API.
func TestDegradationStepsOrdering(t *testing.T) {
	d := er.NewDataset("giant", giantBlockRecords(40, 6)) // 600 natural pairs
	opts := er.DefaultOptions()
	opts.MaxCandidatePairs = 1 // forces all four tightening attempts, then truncation
	res, err := er.ResolveContext(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degradation == nil {
		t.Fatal("budget exceeded but Degradation is nil")
	}
	dr := res.Degradation
	// Identical records are immune to tightening (within-block Jaccard is
	// 1, block size is far below the term-df floor), so the engine must
	// exhaust all four tightening attempts and then truncate: five steps.
	if len(dr.Steps) != 5 {
		t.Fatalf("Steps = %q, want 4 tightening steps and 1 truncation", dr.Steps)
	}
	prevJaccard, prevTermRecords := opts.MinJaccard, math.MaxInt
	for i, step := range dr.Steps[:4] {
		var mj float64
		var mtr, pairs int
		if _, err := fmt.Sscanf(step, "tightened blocking to MinJaccard=%f MaxTermRecords=%d: %d pairs",
			&mj, &mtr, &pairs); err != nil {
			t.Fatalf("Steps[%d] = %q does not narrate a tightening: %v", i, step, err)
		}
		if mj <= prevJaccard {
			t.Errorf("Steps[%d]: MinJaccard %.2f not above previous %.2f", i, mj, prevJaccard)
		}
		if mtr >= prevTermRecords {
			t.Errorf("Steps[%d]: MaxTermRecords %d not below previous %d", i, mtr, prevTermRecords)
		}
		if pairs != dr.OriginalPairs {
			t.Errorf("Steps[%d]: narrated %d pairs, want the tightening-immune %d", i, pairs, dr.OriginalPairs)
		}
		prevJaccard, prevTermRecords = mj, mtr
	}
	// The final fields must match the narrated trajectory: tightening
	// never went past its caps, and the report reflects the last attempt.
	if dr.MinJaccard != prevJaccard || dr.MaxTermRecords != prevTermRecords {
		t.Errorf("report knobs (%.2f, %d) disagree with last narrated step (%.2f, %d)",
			dr.MinJaccard, dr.MaxTermRecords, prevJaccard, prevTermRecords)
	}
	var truncated, budget int
	if _, err := fmt.Sscanf(dr.Steps[4], "truncated %d pairs beyond the budget of %d",
		&truncated, &budget); err != nil {
		t.Fatalf("final step %q does not narrate a truncation: %v", dr.Steps[4], err)
	}
	if truncated != dr.TruncatedPairs || budget != opts.MaxCandidatePairs {
		t.Errorf("truncation step narrates (%d, %d), report says (%d, %d)",
			truncated, budget, dr.TruncatedPairs, opts.MaxCandidatePairs)
	}
}

// TestTruncatedPairsExactness cross-checks TruncatedPairs against an
// independent rebuild: resolving the same dataset with the final tightened
// knobs and no budget must yield exactly TruncatedPairs + budget
// candidates. This pins the accounting, not just the narration.
func TestTruncatedPairsExactness(t *testing.T) {
	recs := giantBlockRecords(12, 5) // 12 * 10 = 120 natural pairs
	d := er.NewDataset("giant", recs)
	opts := er.DefaultOptions()
	opts.MaxCandidatePairs = 7
	res, err := er.ResolveContext(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	dr := res.Degradation
	if dr == nil {
		t.Fatal("budget exceeded but Degradation is nil")
	}
	if dr.FinalPairs != opts.MaxCandidatePairs || len(res.Probabilities) != opts.MaxCandidatePairs {
		t.Fatalf("FinalPairs = %d, probabilities = %d, want the budget %d",
			dr.FinalPairs, len(res.Probabilities), opts.MaxCandidatePairs)
	}
	// Rebuild with the report's final knobs, budget disabled: the candidate
	// count before truncation must equal FinalPairs + TruncatedPairs.
	rebuilt := er.DefaultOptions()
	rebuilt.MinJaccard = dr.MinJaccard
	rebuilt.MaxTermRecords = dr.MaxTermRecords
	p, err := er.NewPipelineContext(context.Background(), d, rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if want := p.NumCandidates() - opts.MaxCandidatePairs; dr.TruncatedPairs != want {
		t.Errorf("TruncatedPairs = %d, want %d (independent rebuild found %d pairs at the final knobs)",
			dr.TruncatedPairs, want, p.NumCandidates())
	}
	if dr.OriginalPairs != 120 {
		t.Errorf("OriginalPairs = %d, want 120", dr.OriginalPairs)
	}
	probabilities(t, "p", res.Probabilities)
}

// TestResolveErrorTaxonomy pins the sentinel for each rejection path.
func TestResolveErrorTaxonomy(t *testing.T) {
	if _, err := er.Resolve(nil, er.DefaultOptions()); !errors.Is(err, er.ErrNoRecords) {
		t.Errorf("nil dataset: %v, want ErrNoRecords", err)
	}
	empty := er.NewDataset("empty", nil)
	if _, err := er.Resolve(empty, er.DefaultOptions()); !errors.Is(err, er.ErrNoRecords) {
		t.Errorf("empty dataset: %v, want ErrNoRecords", err)
	}
	bad := er.DefaultOptions()
	bad.Eta = 3
	d := er.NewDataset("d", []er.Record{{Text: "a b"}, {Text: "a b"}})
	if _, err := er.Resolve(d, bad); !errors.Is(err, er.ErrInvalidOptions) {
		t.Errorf("invalid options: %v, want ErrInvalidOptions", err)
	}
	if _, err := er.NewPipelineContext(context.Background(), d, bad); !errors.Is(err, er.ErrInvalidOptions) {
		t.Errorf("NewPipelineContext invalid options: %v, want ErrInvalidOptions", err)
	}
}

// TestResolveDegenerateInputs: a single record and a zero-candidate dataset
// are valid empty results, not errors, and evaluation stays NaN-free.
func TestResolveDegenerateInputs(t *testing.T) {
	single := er.NewDataset("one", []er.Record{{Text: "only record", Entity: "e0"}})
	res, err := er.Resolve(single, er.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 || len(res.Clusters) != 1 {
		t.Fatalf("single record: %d matches, %d clusters", len(res.Matches), len(res.Clusters))
	}

	disjoint := er.NewDataset("disjoint", []er.Record{
		{Text: "alpha beta", Entity: "e0"},
		{Text: "gamma delta", Entity: "e1"},
	})
	res, err = er.Resolve(disjoint, er.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 || len(res.Probabilities) != 0 {
		t.Fatalf("disjoint records produced matches: %+v", res.Matches)
	}
	if res.Evaluation != nil {
		m := *res.Evaluation
		for _, v := range []float64{m.Precision, m.Recall, m.F1} {
			if math.IsNaN(v) {
				t.Fatalf("evaluation metric is NaN: %+v", m)
			}
		}
	}
}

// TestCheckCandidates pins the advisory sentinel for empty candidate sets.
func TestCheckCandidates(t *testing.T) {
	disjoint := er.NewDataset("disjoint", []er.Record{{Text: "aa bb"}, {Text: "cc dd"}})
	p := er.NewPipeline(disjoint, er.DefaultOptions())
	if err := p.CheckCandidates(); !errors.Is(err, er.ErrNoCandidates) {
		t.Errorf("CheckCandidates = %v, want ErrNoCandidates", err)
	}
	ok := er.NewDataset("ok", []er.Record{{Text: "aa bb"}, {Text: "aa bb"}})
	if err := er.NewPipeline(ok, er.DefaultOptions()).CheckCandidates(); err != nil {
		t.Errorf("CheckCandidates = %v, want nil", err)
	}
}

// TestNewPipelineNormalizesOptions: the error-free constructor must accept
// the zero Options value by normalizing it to the defaults.
func TestNewPipelineNormalizesOptions(t *testing.T) {
	d := er.NewDataset("d", []er.Record{{Text: "x y z"}, {Text: "x y w"}})
	got := er.NewPipeline(d, er.Options{})
	want := er.NewPipeline(d, er.DefaultOptions())
	if got.NumCandidates() != want.NumCandidates() {
		t.Fatalf("zero options: %d candidates, defaults: %d", got.NumCandidates(), want.NumCandidates())
	}
}

// TestResolveSeedZeroMatchesSeedOne pins the unified zero-value seed: a
// zero Seed must behave exactly like Seed 1 across the whole pipeline.
func TestResolveSeedZeroMatchesSeedOne(t *testing.T) {
	d := er.RestaurantReplica(er.ReplicaConfig{Scale: 0.2})
	a := er.DefaultOptions()
	a.Seed = 0
	b := er.DefaultOptions()
	b.Seed = 1
	ra, err := er.Resolve(d, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := er.Resolve(d, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Probabilities) != len(rb.Probabilities) {
		t.Fatal("candidate sets differ")
	}
	for i := range ra.Probabilities {
		if ra.Probabilities[i] != rb.Probabilities[i] {
			t.Fatalf("p[%d]: seed 0 gives %g, seed 1 gives %g", i, ra.Probabilities[i], rb.Probabilities[i])
		}
	}
}
