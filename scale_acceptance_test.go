package er

// 100k-record scale acceptance. Gated behind ER_SCALE_ACCEPTANCE=1 (CI's
// scale-smoke-100k job sets it; the regular race-enabled suite does not)
// because the corpus generation plus two full resolves cost tens of
// seconds — too heavy for the default gate, too important to live only in
// benchmarks where nothing asserts.

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/blocking"
	"repro/internal/textproc"
)

// Scale-acceptance budgets. Wall-clock assertions are inherently machine-
// dependent, so each budget is set several multiples above what this
// code does on a developer machine while staying far below what the
// pre-refactor code did (18.2s serial blocking at 100k records): a budget
// trip means a real regression, not a slow runner.
const (
	// scaleBlockingBudget bounds the parallel batch blocking scan at 100k
	// records (measured ~0.5s with 4 workers, ~1.4s serial).
	scaleBlockingBudget = 10 * time.Second
	// scaleDeltaRatio is the incremental-resolve acceptance: a one-record
	// upsert on a warm 100k collection must resolve in at most
	// 1/scaleDeltaRatio of a full from-scratch resolve (er.Resolve:
	// tokenize + block + fuse + cluster) of the same corpus — the cost a
	// caller without the incremental index pays per refresh.
	scaleDeltaRatio = 10
)

func TestScale100kAcceptance(t *testing.T) {
	if os.Getenv("ER_SCALE_ACCEPTANCE") == "" {
		t.Skip("set ER_SCALE_ACCEPTANCE=1 to run the 100k scale acceptance")
	}
	d := SyntheticDataset(SyntheticConfig{
		Records:       100000,
		DuplicateRate: 0.3,
		VocabSize:     50000,
	})
	opts := DefaultOptions()

	// Blocking wall-time budget: the batch scan over the inverted index.
	c := textproc.BuildCorpus(d.ds.Texts(), opts.corpusOptions())
	start := time.Now()
	g, err := blocking.Build(c, d.ds.Sources(), blocking.Options{
		CrossSourceOnly: d.ds.NumSources > 1,
		MaxTermRecords:  opts.MaxTermRecords,
		MinSharedTerms:  opts.MinSharedTerms,
		MinJaccard:      opts.MinJaccard,
	})
	if err != nil {
		t.Fatal(err)
	}
	blockingWall := time.Since(start)
	t.Logf("blocking: %v, %d candidate pairs", blockingWall, g.NumPairs())
	if blockingWall > scaleBlockingBudget {
		t.Errorf("blocking took %v at 100k records, budget %v", blockingWall, scaleBlockingBudget)
	}

	// Full-resolve reference: the batch pipeline from raw texts, which is
	// what every refresh costs without the incremental index.
	start = time.Now()
	if _, err := Resolve(d, opts); err != nil {
		t.Fatal(err)
	}
	fullWall := time.Since(start)
	t.Logf("full batch resolve: %v", fullWall)

	// Incremental-resolve acceptance: load the same corpus into a
	// Collection, pay the cold collection resolve once, then require a
	// single-record upsert to resolve in a small fraction of the full
	// batch resolve.
	col, err := NewCollection(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.NumRecords(); i++ {
		col.Upsert(fmt.Sprintf("r%06d", i), Record{Text: d.Text(i)})
	}
	start = time.Now()
	cold, err := col.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cold collection resolve: %v, %d matches, %+v", time.Since(start), len(cold.Matches), *cold.Delta)

	// Overwrite one record with another record's text: a genuine duplicate
	// whose new candidate pairs force exactly its component to re-fuse.
	// Three mutation+resolve rounds, taking the fastest: a single-shot
	// wall time on a small runner carries GC pauses worth tens of
	// milliseconds, and the criterion is about the algorithmic cost of a
	// delta-scoped resolve, not pause luck. Each round borrows a distinct
	// donor text: repeating one would revisit a collection state whose
	// component results the content-keyed cache already holds, and the
	// resolve would (correctly) re-fuse nothing.
	incWall := time.Duration(1<<63 - 1)
	for round := 0; round < 3; round++ {
		col.Upsert("r000042", Record{Text: d.Text(43 + round)})
		start = time.Now()
		inc, err := col.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		wall := time.Since(start)
		if wall < incWall {
			incWall = wall
		}
		t.Logf("incremental resolve (round %d): %v, %d matches, %+v",
			round, wall, len(inc.Matches), *inc.Delta)
		if inc.Delta.ComponentsFused == 0 {
			t.Error("duplicate upsert re-fused no components")
		}
		if inc.Delta.ComponentsReused == 0 {
			t.Error("incremental resolve reused no components")
		}
	}
	if incWall > fullWall/scaleDeltaRatio {
		t.Errorf("one-record incremental resolve took %v (best of 3), want <= 1/%d of the %v full resolve",
			incWall, scaleDeltaRatio, fullWall)
	}
}
