package er

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// The library's structured error taxonomy. Every error returned by Resolve,
// ResolveContext and NewPipelineContext wraps one of these sentinels (or a
// context error for cancellation), so callers can branch with errors.Is
// without parsing messages:
//
//	res, err := er.ResolveContext(ctx, d, opts)
//	switch {
//	case errors.Is(err, er.ErrInvalidOptions):   // fix the configuration
//	case errors.Is(err, er.ErrNoRecords):        // empty input
//	case errors.Is(err, er.ErrBudgetExceeded):   // raise MaxWallClock / budgets
//	case errors.Is(err, context.Canceled):       // caller canceled
//	}
var (
	// ErrNoRecords reports a nil or empty dataset. Resolution over nothing
	// is almost always a caller bug (a failed load, an empty query), so it
	// is an error rather than an empty result.
	ErrNoRecords = errors.New("er: dataset has no records")

	// ErrNoCandidates reports that blocking produced no candidate pairs.
	// Resolve does NOT return it — an empty candidate set is a valid empty
	// result (every record its own entity). It is produced by
	// Pipeline.CheckCandidates for callers (such as cmd/erresolve) that
	// treat "nothing can possibly match" as a failure worth surfacing.
	ErrNoCandidates = errors.New("er: no candidate pairs (no two records share a term)")

	// ErrBudgetExceeded reports that a resource budget was exhausted:
	// MaxWallClock elapsed before the pipeline finished. Errors wrapping it
	// also wrap context.DeadlineExceeded.
	ErrBudgetExceeded = errors.New("er: resource budget exceeded")

	// ErrInvalidOptions reports an Options value rejected by Validate.
	ErrInvalidOptions = errors.New("er: invalid options")

	// ErrBadData reports malformed persisted or external input: a matcher
	// model with a wrong version or missing fields, or similar structurally
	// invalid payloads. It is distinct from ErrInvalidOptions (bad
	// configuration) and ErrInternal (library bug): the data itself is the
	// problem, and retrying with the same input cannot succeed.
	ErrBadData = errors.New("er: malformed data")

	// ErrInternal reports an internal invariant violation (a library bug).
	// Resolve and ResolveContext install a panic-recovery boundary that
	// converts internal panics into errors wrapping ErrInternal, so a
	// server embedding the library never crashes on one bad request.
	ErrInternal = errors.New("er: internal error")
)

// StatusClientClosedRequest is the non-standard status (nginx's 499) that
// HTTPStatus assigns to context.Canceled: the caller walked away, so no
// 4xx/5xx from the registry describes the outcome.
const StatusClientClosedRequest = 499

// HTTPStatus maps an error from the resolution API onto the HTTP status a
// server should answer with. It is the single authority consulted by
// cmd/erserve, so the taxonomy-to-status table lives next to the taxonomy
// itself:
//
//	nil                       → 200 OK
//	ErrInvalidOptions         → 400 (fix the request's configuration)
//	ErrBadData, ErrNoRecords  → 400 (fix the uploaded payload)
//	ErrNoCandidates           → 422 (well-formed, but nothing can match)
//	ErrBudgetExceeded         → 504 (the job's own deadline/budget elapsed)
//	context.DeadlineExceeded  → 504
//	context.Canceled          → 499 (client closed request)
//	ErrInternal, anything else → 500
//
// Order matters: ErrBudgetExceeded errors also wrap
// context.DeadlineExceeded, and both outrank the generic fallthrough.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrInvalidOptions),
		errors.Is(err, ErrBadData),
		errors.Is(err, ErrNoRecords):
		return http.StatusBadRequest
	case errors.Is(err, ErrNoCandidates):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrBudgetExceeded),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// recoverToError converts a panic in the resolution path into an error
// wrapping ErrInternal. It is installed by the public entry points; internal
// packages keep panicking on broken invariants (those panics indicate bugs,
// and tests assert on them), while API consumers always get an error.
func recoverToError(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: panic: %v", ErrInternal, r)
	}
}
