package er

// Blocking-layer benchmark at retrieval scale. Internal (package er) so it
// can reach the same corpus options the resolve path derives, keeping the
// measured work identical to what a real resolve performs.

import (
	"fmt"
	"testing"

	"repro/internal/blocking"
	"repro/internal/textproc"
)

// BenchmarkBlocking100k measures batch candidate generation on a
// 100000-record synthetic corpus across worker counts. The corpus is
// tokenized once outside the timer, so the samples isolate the blocking
// scan: per-shard counting-sort enumeration over the inverted index plus
// graph assembly. The output is bit-identical at every worker count
// (TestBuildGraphMatchesReference), so the workers=N samples are directly
// comparable; erbenchjson derives speedup_vs_1_worker from them and
// serial_speedup_vs_baseline against the pre-refactor single-pass scan
// committed in results/bench_baseline_seed.txt. Skipped under -short:
// the 100k corpus setup alone is seconds-scale.
func BenchmarkBlocking100k(b *testing.B) {
	if testing.Short() {
		b.Skip("100k corpus setup is seconds-scale; skipped under -short")
	}
	d := SyntheticDataset(SyntheticConfig{
		Records:       100000,
		DuplicateRate: 0.3,
		VocabSize:     50000,
	})
	opts := DefaultOptions()
	c := textproc.BuildCorpus(d.ds.Texts(), opts.corpusOptions())
	bopts := blocking.Options{
		CrossSourceOnly: d.ds.NumSources > 1,
		MaxTermRecords:  opts.MaxTermRecords,
		MinSharedTerms:  opts.MinSharedTerms,
		MinJaccard:      opts.MinJaccard,
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			bopts.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := blocking.Build(c, d.ds.Sources(), bopts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
