// Papers: deduplicate a bibliography with heavily skewed duplicate counts
// (the paper's Cora scenario — one publication is cited by up to 192
// records). Demonstrates entity clustering via transitive closure and the
// big-clique handling of CliqueRank's weight-boosting refinement.
//
// Run with:
//
//	go run ./examples/papers
package main

import (
	"fmt"

	"repro"
)

func main() {
	ds := er.PaperReplica(er.ReplicaConfig{Seed: 5, Scale: 0.4})
	fmt.Printf("bibliography: %d records, %d true matching pairs\n",
		ds.NumRecords(), ds.NumTrueMatches())

	res, err := er.Resolve(ds, er.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("resolved %d matching pairs in %s\n\n", len(res.Matches), res.Elapsed.Round(1e6))

	fmt.Println("largest resolved publication clusters:")
	for i, c := range res.Clusters {
		if i == 5 || len(c) < 2 {
			break
		}
		fmt.Printf("  cluster %d: %d citation records, e.g.\n", i+1, len(c))
		for k := 0; k < 2 && k < len(c); k++ {
			fmt.Printf("    %s\n", ds.Text(c[k]))
		}
	}

	if res.Evaluation != nil {
		fmt.Printf("\nagainst ground truth: precision %.3f, recall %.3f, F1 %.3f\n",
			res.Evaluation.Precision, res.Evaluation.Recall, res.Evaluation.F1)
	}

	// The same dataset with a single fusion round, to show the value of the
	// ITER ⇄ CliqueRank reinforcement (Table V).
	one := er.DefaultOptions()
	one.FusionIterations = 1
	res1, err := er.Resolve(ds, one)
	if err != nil {
		panic(err)
	}
	if res1.Evaluation != nil && res.Evaluation != nil {
		fmt.Printf("reinforcement effect: F1 %.3f after 1 round -> %.3f after 5 rounds\n",
			res1.Evaluation.F1, res.Evaluation.F1)
	}
}
