// Quickstart: resolve a small in-memory product catalog with the
// unsupervised fusion framework and print the discovered entities.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	records := []er.Record{
		{Text: "sony turntable pslx350h belt drive audio system"},
		{Text: "sony pslx350h turntable with dust cover audio"},
		{Text: "pioneer receiver vsx321 surround stereo channel"},
		{Text: "pioneer vsx321 av receiver stereo black"},
		{Text: "canon powershot a590 digital camera 8mp"},
		{Text: "canon powershot a590 is camera silver 8mp zoom"},
		{Text: "panasonic microwave nn1054 stainless countertop"},
	}
	ds := er.NewDataset("catalog", records)

	res, err := er.Resolve(ds, er.DefaultOptions())
	if err != nil {
		panic(err)
	}

	fmt.Println("Matched pairs (p >= 0.98):")
	for _, m := range res.Matches {
		fmt.Printf("  p=%.3f  %q == %q\n", m.Probability, ds.Text(m.I), ds.Text(m.J))
	}

	fmt.Println("\nResolved entities:")
	for i, c := range res.Clusters {
		if len(c) < 2 {
			continue
		}
		fmt.Printf("  entity %d:\n", i+1)
		for _, r := range c {
			fmt.Printf("    %s\n", ds.Text(r))
		}
	}
}
