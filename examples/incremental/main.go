// Incremental: fit the framework once on a catalog, persist the learned
// model, then match *new* incoming records against it at query time —
// without re-running the pipeline. This is the deployment pattern for a
// live deduplication service.
//
// Run with:
//
//	go run ./examples/incremental
package main

import (
	"bytes"
	"fmt"

	"repro"
)

func main() {
	// Fit on the existing catalog.
	ds := er.ProductReplica(er.ReplicaConfig{Seed: 3, Scale: 0.15})
	pipe := er.NewPipeline(ds, er.DefaultOptions())
	out := pipe.Fusion()
	matcher := pipe.Matcher(out)
	fmt.Printf("fitted on %d records\n", ds.NumRecords())

	// Persist and reload the model, as a service restart would.
	var model bytes.Buffer
	if err := matcher.Save(&model); err != nil {
		panic(err)
	}
	modelBytes := model.Len()
	reloaded, err := er.LoadMatcher(&model)
	if err != nil {
		panic(err)
	}
	fmt.Printf("model round-tripped through %d bytes of JSON\n\n", modelBytes)

	// A "new" record arrives: a noisy variant of catalog record 0.
	query := ds.Text(0) + " refurbished special offer"
	fmt.Printf("incoming record: %q\n\n", query)
	for rank, c := range reloaded.Match(query, 3) {
		fmt.Printf("%d. record %d (similarity %.2f)\n   %s\n   shared evidence: %v\n",
			rank+1, c.Record, c.Similarity, ds.Text(c.Record), c.SharedTerms[:min(4, len(c.SharedTerms))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
