// Products: the two-source e-commerce scenario from the paper's
// introduction. A synthetic Abt-Buy-style catalog is resolved with the
// fusion framework, and the learned term weights are inspected to show that
// the model discovers model codes as the discriminative terms — without any
// labels.
//
// Run with:
//
//	go run ./examples/products
package main

import (
	"fmt"
	"sort"

	"repro"
)

func main() {
	// Generate a quarter-scale replica of the Abt-Buy benchmark: two
	// sources, noisy marketing descriptions, model codes as the only
	// reliable anchor.
	ds := er.ProductReplica(er.ReplicaConfig{Seed: 7, Scale: 0.25})
	fmt.Printf("catalog: %d records from %d sources, %d true matching pairs\n",
		ds.NumRecords(), ds.NumSources(), ds.NumTrueMatches())

	opts := er.DefaultOptions()
	pipe := er.NewPipeline(ds, opts)
	fmt.Printf("candidate pairs after blocking: %d\n\n", pipe.NumCandidates())

	// Compare the unsupervised framework against the string baselines the
	// paper evaluates (their thresholds are tuned by oracle sweep — "an
	// upper bound of manually tuned parameters").
	out := pipe.Fusion()
	if m, ok := pipe.EvaluateMatches(out.Matched); ok {
		fmt.Printf("ITER+CliqueRank  F1 %.3f  (precision %.3f, recall %.3f)\n", m.F1, m.Precision, m.Recall)
	}
	if _, m, ok := pipe.EvaluateScores(pipe.TFIDF()); ok {
		fmt.Printf("TF-IDF (oracle)  F1 %.3f\n", m.F1)
	}
	if _, m, ok := pipe.EvaluateScores(pipe.Jaccard()); ok {
		fmt.Printf("Jaccard (oracle) F1 %.3f\n", m.F1)
	}

	// Show the highest-weighted terms: model codes should dominate, brand
	// and filler words should rank low — the paper's §V-A intuition.
	type tw struct {
		term   string
		weight float64
	}
	var terms []tw
	for t := 0; t < pipe.NumTerms(); t++ {
		if out.TermWeights[t] > 0 {
			terms = append(terms, tw{pipe.Term(t), out.TermWeights[t]})
		}
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].weight > terms[j].weight })
	fmt.Println("\nmost discriminative terms learned (expect model codes):")
	for _, t := range terms[:min(10, len(terms))] {
		fmt.Printf("  %-16s %.3f\n", t.term, t.weight)
	}
	fmt.Println("\nleast discriminative shared terms (expect brands/filler):")
	for _, t := range terms[max(0, len(terms)-5):] {
		fmt.Printf("  %-16s %.3f\n", t.term, t.weight)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
