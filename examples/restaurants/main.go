// Restaurants: deduplicate a single-source restaurant listing (the paper's
// Fodors-Zagat scenario) and demonstrate the universal matching threshold:
// the same η = 0.98 used for products works unchanged here, because
// CliqueRank outputs calibrated probabilities rather than raw similarity
// scores.
//
// Run with:
//
//	go run ./examples/restaurants
package main

import (
	"fmt"

	"repro"
)

func main() {
	ds := er.RestaurantReplica(er.ReplicaConfig{Seed: 11, Scale: 0.5})
	fmt.Printf("listing: %d records, %d duplicate pairs hidden inside\n",
		ds.NumRecords(), ds.NumTrueMatches())

	res, err := er.Resolve(ds, er.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("record graph: %d nodes, %d edges; resolved in %s\n\n",
		res.GraphNodes, res.GraphEdges, res.Elapsed.Round(1e6))

	fmt.Println("sample of resolved duplicates:")
	shown := 0
	for _, m := range res.Matches {
		if shown == 5 {
			break
		}
		shown++
		fmt.Printf("  p=%.3f\n    %s\n    %s\n", m.Probability, ds.Text(m.I), ds.Text(m.J))
	}

	if res.Evaluation != nil {
		fmt.Printf("\nagainst ground truth: precision %.3f, recall %.3f, F1 %.3f\n",
			res.Evaluation.Precision, res.Evaluation.Recall, res.Evaluation.F1)
	}

	// Show probability calibration: how many pairs sit in each band. A
	// well-calibrated output is bimodal — mass near 0 and near 1 — which is
	// what makes the universal threshold possible (§VI).
	bands := make([]int, 5)
	for _, p := range res.Probabilities {
		idx := int(p * 5)
		if idx > 4 {
			idx = 4
		}
		bands[idx]++
	}
	fmt.Println("\nmatching-probability histogram over candidate pairs:")
	labels := []string{"0.0-0.2", "0.2-0.4", "0.4-0.6", "0.6-0.8", "0.8-1.0"}
	for i, count := range bands {
		fmt.Printf("  %s %5d\n", labels[i], count)
	}
}
