package er

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/textproc"
)

// Options configures the resolution pipeline. The zero value is NOT valid;
// start from DefaultOptions, which reproduces the paper's universal
// parameter setting (§VII-C): α = 20, S = 20, η = 0.98, 5 fusion rounds.
type Options struct {
	// Alpha is the non-linear transition exponent of the random walk
	// (Eq. 11). Zero is invalid: Validate rejects it and NewPipeline
	// normalizes it to the default 20.
	Alpha float64
	// Steps is S, the maximum walk length. Zero is invalid: Validate
	// rejects it and NewPipeline normalizes it to the default 20.
	Steps int
	// Eta is the matching-probability threshold η. Because CliqueRank's
	// output is a probability, η transfers across domains (the paper uses
	// 0.98 everywhere). Zero is a legal threshold that declares every
	// surviving candidate pair a match.
	Eta float64
	// FusionIterations is the number of ITER → CliqueRank rounds. Zero is
	// invalid: Validate rejects it and NewPipeline normalizes it to the
	// default 5.
	FusionIterations int

	// MaxDFRatio removes terms occurring in more than this fraction of
	// records during pre-processing (§VII-A "remove the terms that are
	// very frequent"). Zero keeps every term: no frequency filter.
	MaxDFRatio float64
	// MaxTermRecords skips terms contained in more than this many records
	// during candidate generation; 0 (the default) disables the cap and
	// relies on MaxDFRatio. Any positive cap must exceed the largest
	// ground-truth cluster size, or blocking dismembers that cluster: the
	// Paper benchmark's largest entity has 192 records whose shared title
	// words have df = 192.
	MaxTermRecords int
	// MinJaccard requires candidate pairs to reach this Jaccard similarity
	// (default 0.2; the crowd-based systems the paper compares against
	// pre-filter these benchmarks at Jaccard 0.3 — see blocking.Options —
	// and 0.2 is the equivalent operating point for this tokenizer).
	MinJaccard float64
	// Stopwords are removed during pre-processing regardless of frequency,
	// for domain knowledge the frequency filter cannot see. Nil removes
	// nothing beyond the frequency filter.
	Stopwords []string
	// MinSharedTerms requires candidate pairs to share at least this many
	// terms (default 2). Set to 1 for the paper's literal footnote rule;
	// see blocking.Options for why the default dissolves fake cliques of
	// single-shared-term pairs.
	MinSharedTerms int
	// CrossSourceOnly restricts candidate pairs to records from different
	// sources. Resolve derives this from the dataset (multi-source implies
	// true) and ignores the field; Collection — whose source mix changes as
	// records stream in — uses it as configured at creation, because the
	// incremental pair table bakes the rule in.
	CrossSourceOnly bool

	// UseRSS swaps CliqueRank for the sampling-based RSS estimator.
	UseRSS bool
	// RSSWalks is M, the number of walks sampled per edge by RSS. Zero is
	// ignored unless UseRSS is set, in which case Validate rejects values
	// below 2 and NewPipeline normalizes them to the default 20.
	RSSWalks int

	// L2Normalization switches ITER's per-iteration term-weight
	// normalization from the paper's bounded map x/(1+x) to unit Euclidean
	// norm (the alternative §V-C mentions). The learned ranking is
	// preserved; only the weight scale changes.
	L2Normalization bool

	// Seed drives every random choice in the pipeline. A zero Seed selects
	// the default seed 1 — the same zero-value behavior as ReplicaConfig —
	// so runs configured with the zero value are reproducible by default.
	Seed int64

	// Workers bounds the goroutines the fusion kernels (ITER, CliqueRank,
	// RSS) fan out across. Results are bit-identical for every setting —
	// the kernels run through a deterministic chunked scheduler — so this
	// knob trades only wall-clock time against CPU. Zero selects
	// runtime.GOMAXPROCS(0); Validate rejects negative values and
	// NewPipeline normalizes them to zero.
	Workers int

	// DisableSharding turns off component-sharded ranking. By default the
	// pipeline partitions the candidate graph into connected components
	// after blocking and runs record-graph construction + CliqueRank per
	// component — coarse-grained parallelism that scales on real corpora
	// (many small components) where row-level fan-out cannot. Scores and
	// clusters are bit-identical either way (the determinism suite pins
	// it); set this only to diagnose the sharded path or to force the
	// single global record graph. Ignored (always unsharded) under UseRSS.
	DisableSharding bool

	// MaxCandidatePairs caps the number of candidate pairs blocking may
	// hand to the quadratic-and-worse downstream stages; 0 disables the
	// cap. When natural blocking exceeds it, the pipeline degrades
	// gracefully: it tightens MinJaccard and MaxTermRecords and retries,
	// truncating deterministically as a last resort, and reports every
	// step in Result.Degradation (Pipeline.Degradation).
	MaxCandidatePairs int
	// MaxWallClock bounds the wall-clock time of ResolveContext (the whole
	// run) and, for staged callers, of NewPipelineContext and
	// Pipeline.FusionContext individually; 0 disables the bound. When it
	// elapses, the run aborts with an error wrapping both
	// ErrBudgetExceeded and context.DeadlineExceeded. The error-free
	// legacy entry points (NewPipeline, Pipeline.Fusion) ignore it.
	MaxWallClock time.Duration

	// Progress, when non-nil, observes each fusion iteration with the
	// current pair similarities, matching probabilities and cumulative
	// elapsed time.
	Progress func(iteration int, s, p []float64, elapsed time.Duration)

	// Snapshots, when non-nil, caches the pre-matching artifacts
	// (tokenized corpus, blocked candidate graph, degradation report)
	// content-keyed by dataset and options, so repeated pipelines over the
	// same data skip the dominant pre-matching cost; cached stages appear
	// in the trace with Cached set. Nil disables reuse.
	Snapshots *SnapshotCache
}

// DefaultOptions returns the paper's universal setting.
func DefaultOptions() Options {
	return Options{
		Alpha:            20,
		Steps:            20,
		Eta:              0.98,
		FusionIterations: 5,
		MaxDFRatio:       0.12,
		MinSharedTerms:   2,
		MinJaccard:       0.2,
		RSSWalks:         20,
		Seed:             1,
	}
}

// Validate reports the first configuration error, or nil. Resolve,
// ResolveContext and NewPipelineContext reject invalid options with an
// error wrapping ErrInvalidOptions; NewPipeline (which cannot return an
// error) normalizes invalid fields to their defaults instead — see
// normalized.
func (o Options) Validate() error {
	switch {
	case o.Alpha <= 0:
		return fmt.Errorf("%w: Alpha must be positive, got %g", ErrInvalidOptions, o.Alpha)
	case o.Steps < 1:
		return fmt.Errorf("%w: Steps must be >= 1, got %d", ErrInvalidOptions, o.Steps)
	case o.Eta < 0 || o.Eta > 1:
		return fmt.Errorf("%w: Eta must be in [0,1], got %g", ErrInvalidOptions, o.Eta)
	case o.FusionIterations < 1:
		return fmt.Errorf("%w: FusionIterations must be >= 1, got %d", ErrInvalidOptions, o.FusionIterations)
	case o.MaxDFRatio < 0 || o.MaxDFRatio > 1:
		return fmt.Errorf("%w: MaxDFRatio must be in [0,1], got %g", ErrInvalidOptions, o.MaxDFRatio)
	case o.MinJaccard < 0 || o.MinJaccard > 1:
		return fmt.Errorf("%w: MinJaccard must be in [0,1], got %g", ErrInvalidOptions, o.MinJaccard)
	case o.UseRSS && o.RSSWalks < 2:
		return fmt.Errorf("%w: RSSWalks must be >= 2 when UseRSS is set, got %d", ErrInvalidOptions, o.RSSWalks)
	case o.MaxCandidatePairs < 0:
		return fmt.Errorf("%w: MaxCandidatePairs must be >= 0, got %d", ErrInvalidOptions, o.MaxCandidatePairs)
	case o.MaxWallClock < 0:
		return fmt.Errorf("%w: MaxWallClock must be >= 0, got %s", ErrInvalidOptions, o.MaxWallClock)
	case o.Workers < 0:
		return fmt.Errorf("%w: Workers must be >= 0, got %d", ErrInvalidOptions, o.Workers)
	}
	return nil
}

// normalized returns a copy with every invalid field reset to its default,
// so that NewPipeline — whose signature predates the error taxonomy and
// cannot fail — behaves deterministically on any input instead of
// panicking. Context-aware callers go through Validate and never reach the
// fallbacks.
func (o Options) normalized() Options {
	d := DefaultOptions()
	if o.Alpha <= 0 {
		o.Alpha = d.Alpha
	}
	if o.Steps < 1 {
		o.Steps = d.Steps
	}
	if o.Eta < 0 || o.Eta > 1 {
		o.Eta = d.Eta
	}
	if o.FusionIterations < 1 {
		o.FusionIterations = d.FusionIterations
	}
	if o.MaxDFRatio < 0 || o.MaxDFRatio > 1 {
		o.MaxDFRatio = d.MaxDFRatio
	}
	if o.MinJaccard < 0 || o.MinJaccard > 1 {
		o.MinJaccard = d.MinJaccard
	}
	if o.UseRSS && o.RSSWalks < 2 {
		o.RSSWalks = d.RSSWalks
	}
	if o.MaxCandidatePairs < 0 {
		o.MaxCandidatePairs = 0
	}
	if o.MaxWallClock < 0 {
		o.MaxWallClock = 0
	}
	if o.Workers < 0 {
		o.Workers = 0
	}
	return o
}

func (o Options) coreOptions() core.Options {
	c := core.DefaultOptions()
	c.Alpha = o.Alpha
	c.Steps = o.Steps
	c.Eta = o.Eta
	c.FusionIterations = o.FusionIterations
	c.UseRSS = o.UseRSS
	c.RSSWalks = o.RSSWalks
	if o.L2Normalization {
		c.Normalization = core.NormL2
	}
	c.Seed = o.Seed
	c.Workers = o.Workers
	c.ShardComponents = !o.DisableSharding
	c.Progress = o.Progress
	return c
}

func (o Options) corpusOptions() textproc.CorpusOptions {
	return textproc.CorpusOptions{
		Tokenize:   textproc.DefaultTokenizeOptions(),
		MaxDFRatio: o.MaxDFRatio,
		Stopwords:  o.Stopwords,
	}
}
